package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/document"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// bufConn adapts in-memory readers/writers to net.Conn so codec tests
// and benchmarks can drive the wire format without sockets.
type bufConn struct {
	r io.Reader
	w io.Writer
}

func (c bufConn) Read(p []byte) (int, error) {
	if c.r == nil {
		return 0, io.EOF
	}
	return c.r.Read(p)
}

func (c bufConn) Write(p []byte) (int, error) {
	if c.w == nil {
		return len(p), nil
	}
	return c.w.Write(p)
}

func (bufConn) Close() error                       { return nil }
func (bufConn) LocalAddr() net.Addr                { return nil }
func (bufConn) RemoteAddr() net.Addr               { return nil }
func (bufConn) SetDeadline(t time.Time) error      { return nil }
func (bufConn) SetReadDeadline(t time.Time) error  { return nil }
func (bufConn) SetWriteDeadline(t time.Time) error { return nil }

// seqTuple builds a sequenced data-plane envelope as sendToPeer would.
func seqTuple(seq uint64, vals topology.Values) *envelope {
	e := tupleFrame(vals)
	e.FromWorker = 1
	e.DataSeq = seq
	return e
}

// sameValues compares decoded tuple values against the originals,
// comparing documents structurally and everything else deeply.
func sameValues(t *testing.T, got, want topology.Values) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("value count = %d, want %d (%v vs %v)", len(got), len(want), got, want)
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("value %q missing", k)
		}
		if wd, isDoc := w.(document.Document); isDoc {
			gd, isDoc := g.(document.Document)
			if !isDoc || !gd.Equal(wd) || gd.ID != wd.ID {
				t.Fatalf("value %q: doc %v, want %v", k, g, w)
			}
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("value %q = %#v (%T), want %#v (%T)", k, g, g, w, w)
		}
	}
}

// TestBinaryWireRoundTrip batches several sequenced tuples — documents,
// every fast-path value kind, and a gob-fallback value — through one
// binary frame and checks the members come out in order with their
// implicit sequence numbers and the piggybacked ack on the first.
func TestBinaryWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sender := newBinConn(bufConn{w: &buf}, true, false)

	batch := []*envelope{
		seqTuple(11, topology.Values{
			"doc":    dictDoc(7, "user", "alice", "host", "web-1"),
			"window": 3,
			"name":   "payload",
			"ok":     true,
			"off":    false,
			"ratio":  2.5,
			"n64":    int64(-9),
			"u64":    uint64(1 << 40),
			"ids":    []int{4, -2, 0},
			"blob":   map[string]any{"k": 1},
			"nil":    nil,
		}),
		seqTuple(12, topology.Values{"doc": dictDoc(8, "user", "alice", "region", "eu")}),
		seqTuple(13, topology.Values{"doc": dictDoc(9)}), // empty document
	}
	batch[0].AckSeq = 41
	if err := sender.sendBatch(batch); err != nil {
		t.Fatal(err)
	}

	receiver := newBinConn(bufConn{r: bytes.NewReader(buf.Bytes())}, false, false)
	for i, want := range batch {
		e, err := receiver.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if e.Kind != frameTuple || e.FromWorker != 1 {
			t.Fatalf("member %d: kind=%d from=%d", i, e.Kind, e.FromWorker)
		}
		if e.DataSeq != 11+uint64(i) {
			t.Fatalf("member %d: DataSeq = %d, want %d", i, e.DataSeq, 11+uint64(i))
		}
		wantAck := uint64(0)
		if i == 0 {
			wantAck = 41
		}
		if e.AckSeq != wantAck {
			t.Fatalf("member %d: AckSeq = %d, want %d", i, e.AckSeq, wantAck)
		}
		if e.TargetComp != want.TargetComp || e.TargetTask != want.TargetTask ||
			e.Tuple.Stream != want.Tuple.Stream || e.Tuple.Source != want.Tuple.Source {
			t.Fatalf("member %d: routing fields differ: %+v", i, e)
		}
		sameValues(t, e.Tuple.Values, want.Tuple.Values)
	}
	if _, err := receiver.recv(); err != io.EOF {
		t.Fatalf("after stream end: err = %v, want EOF", err)
	}
}

// TestBinaryWireDictDelta checks the dictionary lifecycle across
// frames: first use ships a string, reuse does not, and the ack path
// carries no dictionary at all.
func TestBinaryWireDictDelta(t *testing.T) {
	var buf bytes.Buffer
	reg := telemetry.NewRegistry()
	sender := newBinConn(bufConn{w: &buf}, true, false)
	sender.dictMisses = reg.Counter("misses")
	sender.dictHits = reg.Counter("hits")

	if err := sender.sendBatch([]*envelope{seqTuple(1, topology.Values{"doc": dictDoc(1, "user", "alice")})}); err != nil {
		t.Fatal(err)
	}
	misses1 := sender.dictMisses.Value()
	firstLen := buf.Len()
	// Same strings again: everything resolves from the dictionary.
	if err := sender.sendBatch([]*envelope{seqTuple(2, topology.Values{"doc": dictDoc(2, "user", "alice")})}); err != nil {
		t.Fatal(err)
	}
	if sender.dictMisses.Value() != misses1 {
		t.Fatalf("repeat frame added %d dictionary entries, want 0", sender.dictMisses.Value()-misses1)
	}
	if sender.dictHits.Value() == 0 {
		t.Fatal("repeat frame resolved no strings from the dictionary")
	}
	if second := buf.Len() - firstLen; second >= firstLen {
		t.Fatalf("repeat frame (%dB) not smaller than first frame (%dB): delta not incremental", second, firstLen)
	}

	receiver := newBinConn(bufConn{r: bytes.NewReader(buf.Bytes())}, false, false)
	for i := 0; i < 2; i++ {
		e, err := receiver.recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		d := e.Tuple.Values["doc"].(document.Document)
		if want := dictDoc(uint64(i+1), "user", "alice"); !d.Equal(want) {
			t.Fatalf("frame %d decoded %v, want %v", i, d, want)
		}
	}
}

// TestBinaryWireEnvelopeNotMutated checks the resend contract: encoding
// must leave the buffered envelope untouched (raw strings, no Dict), so
// a replay after a sever re-encodes against the fresh connection.
func TestBinaryWireEnvelopeNotMutated(t *testing.T) {
	sender := newBinConn(bufConn{}, true, false)
	d := dictDoc(1, "a", "x")
	e := seqTuple(5, topology.Values{"doc": d, "n": 3})
	if err := sender.sendBatch([]*envelope{e}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Tuple.Values["doc"].(document.Document); !ok {
		t.Fatalf("envelope mutated: doc became %T", e.Tuple.Values["doc"])
	}
	if e.Dict != nil {
		t.Fatalf("envelope mutated: Dict = %v", e.Dict)
	}
	if e.DataSeq != 5 || e.Tuple.Values["n"] != 3 {
		t.Fatalf("envelope mutated: %+v", e)
	}
}

// TestBinaryWireDictReset simulates the sever/redial cycle: buffered
// envelopes re-encoded on a brand-new connection pair must decode
// exactly, because both dictionaries restart empty.
func TestBinaryWireDictReset(t *testing.T) {
	batch := []*envelope{
		seqTuple(1, topology.Values{"doc": dictDoc(1, "user", "alice", "host", "web-1")}),
		seqTuple(2, topology.Values{"doc": dictDoc(2, "user", "bob")}),
	}
	for attempt := 0; attempt < 2; attempt++ { // first send, then the replay
		var buf bytes.Buffer
		sender := newBinConn(bufConn{w: &buf}, true, false)
		if err := sender.sendBatch(batch); err != nil {
			t.Fatalf("attempt %d: %v", attempt, err)
		}
		receiver := newBinConn(bufConn{r: bytes.NewReader(buf.Bytes())}, false, false)
		for i := range batch {
			e, err := receiver.recv()
			if err != nil {
				t.Fatalf("attempt %d recv %d: %v", attempt, i, err)
			}
			want := batch[i].Tuple.Values["doc"].(document.Document)
			if got := e.Tuple.Values["doc"].(document.Document); !got.Equal(want) {
				t.Fatalf("attempt %d frame %d: %v, want %v", attempt, i, got, want)
			}
		}
	}
}

// TestBinaryWireBatchSeqGap checks the contiguity guard: a batch whose
// members do not carry consecutive sequence numbers must be refused,
// not silently mis-sequenced on the receiver.
func TestBinaryWireBatchSeqGap(t *testing.T) {
	sender := newBinConn(bufConn{}, true, false)
	err := sender.sendBatch([]*envelope{
		seqTuple(1, topology.Values{"n": 1}),
		seqTuple(3, topology.Values{"n": 2}),
	})
	if err == nil {
		t.Fatal("sequence-gapped batch must fail")
	}
}

// TestBinaryWireUnknownRef checks that a frame referencing dictionary
// ids the receiver never saw (a decoder spliced into the middle of a
// stream — the bug dictionary reset on redial exists to prevent) fails
// loudly instead of fabricating strings.
func TestBinaryWireUnknownRef(t *testing.T) {
	var buf bytes.Buffer
	sender := newBinConn(bufConn{w: &buf}, true, false)
	frames := []*envelope{
		seqTuple(1, topology.Values{"doc": dictDoc(1, "user", "alice")}),
		seqTuple(2, topology.Values{"doc": dictDoc(2, "user", "alice")}),
	}
	if err := sender.sendBatch(frames[:1]); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len()
	if err := sender.sendBatch(frames[1:]); err != nil {
		t.Fatal(err)
	}
	// Feed only the second frame (preceded by a fresh preamble) to a
	// receiver that never saw the first frame's dictionary delta.
	spliced := append(append([]byte(binWireMagic), binWireVersion), buf.Bytes()[cut:]...)
	receiver := newBinConn(bufConn{r: bytes.NewReader(spliced)}, false, false)
	if _, err := receiver.recv(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("spliced stream decoded; err = %v, want dictionary ref out of range", err)
	}
}

// TestBinaryWireTruncation checks every truncation point of a valid
// frame is rejected with an error — never a panic, never a phantom
// tuple.
func TestBinaryWireTruncation(t *testing.T) {
	var buf bytes.Buffer
	sender := newBinConn(bufConn{w: &buf}, true, false)
	err := sender.sendBatch([]*envelope{
		seqTuple(1, topology.Values{"doc": dictDoc(1, "user", "alice"), "n": 7, "s": "xyz"}),
		seqTuple(2, topology.Values{"ids": []int{1, 2, 3}}),
	})
	if err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		receiver := newBinConn(bufConn{r: bytes.NewReader(full[:cut])}, false, false)
		e, err := receiver.recv()
		if err == nil {
			t.Fatalf("cut at %d/%d decoded a tuple: %+v", cut, len(full), e)
		}
	}
}

// TestBinaryWirePreamble checks version/magic negotiation failures are
// rejected before any frame is interpreted.
func TestBinaryWirePreamble(t *testing.T) {
	bad := [][]byte{
		[]byte("GARBAGE"),
		append([]byte("SFJX"), binWireVersion),         // wrong magic
		append([]byte(binWireMagic), binWireVersion+1), // future version
	}
	for i, b := range bad {
		receiver := newBinConn(bufConn{r: bytes.NewReader(b)}, false, false)
		if _, err := receiver.recv(); err == nil {
			t.Fatalf("case %d: bad preamble accepted", i)
		}
	}
}

// TestBinaryWireAckFrame round-trips a dedicated ack frame.
func TestBinaryWireAckFrame(t *testing.T) {
	var buf bytes.Buffer
	sender := newBinConn(bufConn{w: &buf}, true, false)
	if err := sender.send(&envelope{Kind: frameAck, WorkerID: 3, AckSeq: 99}); err != nil {
		t.Fatal(err)
	}
	receiver := newBinConn(bufConn{r: bytes.NewReader(buf.Bytes())}, false, false)
	e, err := receiver.recv()
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != frameAck || e.WorkerID != 3 || e.AckSeq != 99 {
		t.Fatalf("ack decoded as %+v", e)
	}
	// Control-plane kinds must be refused: they belong on gob.
	if err := sender.send(&envelope{Kind: frameProbe}); err == nil {
		t.Fatal("control frame accepted on the binary data plane")
	}
}

// TestBinaryWireCompression checks the DEFLATE path: a repetitive
// payload travels compressed (smaller than the uncompressed encoding,
// flagged per frame), decodes identically, and moves the ratio
// instruments.
func TestBinaryWireCompression(t *testing.T) {
	vals := topology.Values{"s": strings.Repeat("abcdef ", 400)}
	encode := func(compress bool) (*bytes.Buffer, *binConn) {
		var buf bytes.Buffer
		c := newBinConn(bufConn{w: &buf}, true, compress)
		if err := c.sendBatch([]*envelope{seqTuple(1, vals)}); err != nil {
			t.Fatal(err)
		}
		return &buf, c
	}
	plain, _ := encode(false)
	reg := telemetry.NewRegistry()
	comp, cc := encode(true)
	_ = cc
	if comp.Len() >= plain.Len() {
		t.Fatalf("compressed frame %dB, uncompressed %dB", comp.Len(), plain.Len())
	}
	// With instruments attached, the raw/compressed totals and the ratio
	// gauge move.
	var buf bytes.Buffer
	c := newBinConn(bufConn{w: &buf}, true, true)
	c.rawBytes = reg.Counter("raw")
	c.compBytes = reg.Counter("comp")
	c.compRatio = reg.Gauge("ratio")
	if err := c.sendBatch([]*envelope{seqTuple(1, vals)}); err != nil {
		t.Fatal(err)
	}
	if c.rawBytes.Value() == 0 || c.compBytes.Value() == 0 {
		t.Fatal("compression counters did not move")
	}
	if r := c.compRatio.Value(); r <= 1 {
		t.Fatalf("compression ratio %v, want > 1 for repetitive payload", r)
	}
	receiver := newBinConn(bufConn{r: bytes.NewReader(buf.Bytes())}, false, false)
	e, err := receiver.recv()
	if err != nil {
		t.Fatal(err)
	}
	sameValues(t, e.Tuple.Values, vals)

	// An incompressible payload must travel uncompressed (no flag, no
	// size regression) and still decode.
	rnd := make([]byte, 4096)
	s := uint64(0x9e3779b97f4a7c15)
	for i := range rnd {
		s = s*6364136223846793005 + 1442695040888963407
		rnd[i] = byte(s >> 33)
	}
	var buf2 bytes.Buffer
	c2 := newBinConn(bufConn{w: &buf2}, true, true)
	if err := c2.sendBatch([]*envelope{seqTuple(1, topology.Values{"s": string(rnd)})}); err != nil {
		t.Fatal(err)
	}
	r2 := newBinConn(bufConn{r: bytes.NewReader(buf2.Bytes())}, false, false)
	if _, err := r2.recv(); err != nil {
		t.Fatalf("incompressible payload: %v", err)
	}
}

// TestBinaryWireOverSocket runs the codec over a real socket pair with
// concurrent sender/receiver — the shape the worker uses.
func TestBinaryWireOverSocket(t *testing.T) {
	a, b := net.Pipe()
	sender := newBinConn(a, true, false)
	receiver := newBinConn(b, false, false)
	defer sender.close()
	defer receiver.close()

	batches := [][]*envelope{
		{seqTuple(1, topology.Values{"doc": dictDoc(1, "user", "alice", "host", "web-1")}),
			seqTuple(2, topology.Values{"doc": dictDoc(2, "user", "alice", "region", "eu")})},
		{seqTuple(3, topology.Values{"doc": dictDoc(3), "window": 1})},
	}
	errCh := make(chan error, 1)
	go func() {
		for _, batch := range batches {
			if err := sender.sendBatch(batch); err != nil {
				errCh <- err
				return
			}
		}
		errCh <- nil
	}()
	for _, batch := range batches {
		for i, want := range batch {
			e, err := receiver.recv()
			if err != nil {
				t.Fatalf("recv: %v", err)
			}
			if e.DataSeq != want.DataSeq {
				t.Fatalf("member %d: seq %d want %d", i, e.DataSeq, want.DataSeq)
			}
			sameValues(t, e.Tuple.Values, want.Tuple.Values)
		}
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
}

// FuzzFrameRoundTrip fuzzes the binary codec end to end, mirroring
// FuzzInternedParity: whatever batch is encoded must decode to the same
// semantic envelopes; truncating the stream anywhere must error (never
// panic, never a phantom tuple); splicing a decoder into the middle of
// a stream must surface unknown dictionary refs; and arbitrary garbage
// after a valid preamble must be rejected without panicking.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("user", "alice", "host", "web-1", uint8(3), uint16(10), []byte{})
	f.Add("", "", "k", "v", uint8(0), uint16(0), []byte{0x01})
	f.Add("a", strings.Repeat("x", 300), "b", "y", uint8(7), uint16(40), []byte{0x05, 1, 0, 0xff})
	f.Fuzz(func(t *testing.T, a1, v1, a2, v2 string, n uint8, cut uint16, raw []byte) {
		nTuples := int(n%4) + 1
		batch := make([]*envelope, nTuples)
		for i := range batch {
			vals := topology.Values{
				"doc": dictDoc(uint64(i+1), a1, v1, a2, v2),
				"n":   int(n) - i,
				"s":   v1,
			}
			if i%2 == 1 {
				vals["ids"] = []int{i, -i}
				vals["f"] = float64(n) / 3
			}
			batch[i] = seqTuple(uint64(100+i), vals)
		}
		batch[0].AckSeq = uint64(n)

		var buf bytes.Buffer
		sender := newBinConn(bufConn{w: &buf}, true, n%2 == 0)
		if err := sender.sendBatch(batch); err != nil {
			t.Fatal(err)
		}
		cutAt := buf.Len()
		// Second frame reusing the first frame's dictionary.
		second := seqTuple(uint64(100+nTuples), topology.Values{"doc": dictDoc(99, a1, v1)})
		if err := sender.sendBatch([]*envelope{second}); err != nil {
			t.Fatal(err)
		}
		full := buf.Bytes()

		// Parity: both frames decode to the originals.
		receiver := newBinConn(bufConn{r: bytes.NewReader(full)}, false, false)
		for i, want := range append(append([]*envelope{}, batch...), second) {
			e, err := receiver.recv()
			if err != nil {
				t.Fatalf("recv %d: %v", i, err)
			}
			if e.DataSeq != want.DataSeq || e.TargetComp != want.TargetComp || e.TargetTask != want.TargetTask {
				t.Fatalf("member %d: %+v, want %+v", i, e, want)
			}
			wd := want.Tuple.Values["doc"].(document.Document)
			gd, ok := e.Tuple.Values["doc"].(document.Document)
			if !ok || !gd.Equal(wd) || gd.ID != wd.ID {
				t.Fatalf("member %d: doc %v, want %v", i, e.Tuple.Values["doc"], wd)
			}
			if len(e.Tuple.Values) != len(want.Tuple.Values) {
				t.Fatalf("member %d: values %v, want %v", i, e.Tuple.Values, want.Tuple.Values)
			}
		}
		if _, err := receiver.recv(); err != io.EOF {
			t.Fatalf("stream end: %v", err)
		}

		// Truncation anywhere inside the first frame must error.
		if c := int(cut) % cutAt; true {
			tr := newBinConn(bufConn{r: bytes.NewReader(full[:c])}, false, false)
			if e, err := tr.recv(); err == nil {
				t.Fatalf("truncation at %d decoded %+v", c, e)
			}
		}

		// Splice: decoding the second frame without the first's dictionary
		// must fail (the frame's refs point at entries never shipped).
		spliced := append(append([]byte(binWireMagic), binWireVersion), full[cutAt:]...)
		sp := newBinConn(bufConn{r: bytes.NewReader(spliced)}, false, false)
		if _, err := sp.recv(); err == nil {
			t.Fatal("spliced stream decoded a frame with unknown dictionary refs")
		}

		// Garbage robustness: arbitrary bytes after a valid preamble must
		// error out (eventually) without panicking or looping forever.
		g := newBinConn(bufConn{r: bytes.NewReader(append(append([]byte(binWireMagic), binWireVersion), raw...))}, false, false)
		for {
			if _, err := g.recv(); err != nil {
				break
			}
		}
	})
}

// TestWireTelemetryByFormat runs the same two-worker topology under
// each wire format and checks the transport instruments tell them
// apart: binary moves the cluster_wire_bytes_* counters and the frame
// batch histogram, gob leaves them at zero — exactly what an A/B
// operator will look at in /debug/stats.
func TestWireTelemetryByFormat(t *testing.T) {
	for _, format := range []string{WireGob, WireBinary} {
		format := format
		t.Run("wire="+format, func(t *testing.T) {
			const n = 200
			mu := &sync.Mutex{}
			sum, cnt := 0, 0
			makeBuilder := func() *topology.Builder {
				b := topology.NewBuilder()
				b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: n} }, 1)
				b.SetBolt("sink", func(int) topology.Bolt {
					return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
				}, 2).ShuffleGrouping("src")
				return b
			}
			regs := make([]*telemetry.Registry, 2)
			inst := instrument(regs)
			_, _, result := startChaosCluster(t, makeBuilder, 2, func(w *Worker) {
				inst(w)
				w.WireFormat = format
			})
			awaitResult(t, result)
			mu.Lock()
			if cnt != n {
				t.Errorf("received %d tuples, want %d", cnt, n)
			}
			mu.Unlock()

			var wireData, wireRecv, batches int64
			for id, reg := range regs {
				wireData += reg.Counter(telemetry.Name("cluster_wire_bytes_sent_total", "kind", "data", "worker", fmt.Sprint(id))).Value()
				wireRecv += reg.Counter(telemetry.Name("cluster_wire_bytes_received_total", "kind", "data", "worker", fmt.Sprint(id))).Value()
				batches += reg.Histogram(telemetry.Name("cluster_frame_batch_docs", "worker", fmt.Sprint(id))).Count()
			}
			if format == WireBinary {
				if wireData == 0 || wireRecv == 0 {
					t.Errorf("binary run moved no wire byte counters: sent=%d received=%d", wireData, wireRecv)
				}
				if batches == 0 {
					t.Error("binary run recorded no frame batches")
				}
			} else {
				if wireData != 0 || wireRecv != 0 || batches != 0 {
					t.Errorf("gob run moved binary-wire instruments: sent=%d received=%d batches=%d", wireData, wireRecv, batches)
				}
				// The gob byte counters still account for the traffic.
				if sumTel(regs, "cluster_bytes_sent_total") == 0 {
					t.Error("gob run moved no byte counters at all")
				}
			}
		})
	}
}
