package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// ChaosAction enumerates the faults a ChaosSchedule can inject through
// a ChaosProxy.
type ChaosAction int

const (
	// ChaosSever cuts every live link through the proxy mid-stream.
	ChaosSever ChaosAction = iota
	// ChaosDelay adds the event's Delay to each forwarded chunk.
	ChaosDelay
	// ChaosClearDelay restores pass-through forwarding.
	ChaosClearDelay
	// ChaosRefuse closes the proxy listener so new dials are refused.
	ChaosRefuse
	// ChaosResume re-opens the listener after ChaosRefuse.
	ChaosResume
)

// String names the action for logs and test failure messages.
func (a ChaosAction) String() string {
	switch a {
	case ChaosSever:
		return "sever"
	case ChaosDelay:
		return "delay"
	case ChaosClearDelay:
		return "clear-delay"
	case ChaosRefuse:
		return "refuse"
	case ChaosResume:
		return "resume"
	}
	return fmt.Sprintf("ChaosAction(%d)", int(a))
}

// ChaosEvent is one scripted fault: when the cluster-wide count of
// dispatched tuple copies reaches AtCopies, Action fires on the proxy
// of worker Worker (-1 = every proxy). Anchoring events to stream
// positions rather than wall-clock instants is what makes a schedule
// reproducible: the same seed and the same stream hit the same fault
// at the same tuple, however fast the host happens to run.
//
// For, when positive, schedules the counter-action that long after the
// event fires: a delay is cleared, a refusing listener resumes. Severs
// need no counter-action — the reliable transport redials and replays
// on its own. A ChaosRefuse with For == 0 refuses for the rest of the
// run; schedules that must terminate should always give refusals a
// bounded For.
type ChaosEvent struct {
	AtCopies int64
	Worker   int
	Action   ChaosAction
	Delay    time.Duration
	For      time.Duration
}

// ChaosSchedule is a deterministic fault script for a cluster run:
// events fire in AtCopies order as the stream progresses. Seed records
// the generator seed for schedules built by RandomSchedule, so a
// failing run's exact fault sequence can be reproduced from one
// number.
type ChaosSchedule struct {
	Seed   int64
	Events []ChaosEvent
}

// RandomSchedule derives a schedule of n events from seed: fault kind,
// victim worker and stream offset are all drawn from a seeded PRNG.
// Two runs with the same seed, worker count and copy budget schedule
// identical faults at identical stream positions. maxCopies should be
// a (rough) lower bound on the run's total dispatched copies so the
// whole schedule actually fires.
func RandomSchedule(seed int64, n, workers int, maxCopies int64) ChaosSchedule {
	rng := rand.New(rand.NewSource(seed))
	events := make([]ChaosEvent, 0, n)
	for i := 0; i < n; i++ {
		ev := ChaosEvent{
			AtCopies: 1 + rng.Int63n(maxCopies),
			Worker:   rng.Intn(workers+1) - 1, // -1 severs/delays/refuses everywhere
		}
		switch rng.Intn(3) {
		case 0:
			ev.Action = ChaosSever
		case 1:
			ev.Action = ChaosDelay
			ev.Delay = time.Duration(1+rng.Intn(3)) * time.Millisecond
			ev.For = time.Duration(5+rng.Intn(20)) * time.Millisecond
		case 2:
			ev.Action = ChaosRefuse
			ev.For = time.Duration(5+rng.Intn(20)) * time.Millisecond
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].AtCopies < events[j].AtCopies })
	return ChaosSchedule{Seed: seed, Events: events}
}

// Run drives the schedule against the proxies: it polls copies — the
// caller's view of the cluster-wide dispatched-copy count — and fires
// each event once its threshold is reached, in order. It returns when
// every event has fired and every timed counter-action has run, or
// promptly after stop closes (pending counter-actions then run
// immediately, so no proxy is left refusing dials). Run is typically
// launched on its own goroutine for the duration of a cluster attempt.
func (s ChaosSchedule) Run(proxies []*ChaosProxy, copies func() int64, stop <-chan struct{}) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for _, ev := range s.Events {
		for copies() < ev.AtCopies {
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
		targets := proxies
		if ev.Worker >= 0 && ev.Worker < len(proxies) {
			targets = proxies[ev.Worker : ev.Worker+1]
		}
		// A sever with nothing established is a silent no-op (and peers
		// whose dials are in flight but not yet registered by the proxy
		// escape it entirely), so wait for a live link on the targets:
		// the event means "cut the traffic at this stream offset", not
		// "maybe cut it, if the dial raced well". If the targets never
		// carry a link, the wait ends with the run (stop).
		if ev.Action == ChaosSever {
			for liveLinks(targets) == 0 {
				select {
				case <-stop:
					return
				case <-time.After(200 * time.Microsecond):
				}
			}
		}
		fireChaos(targets, ev.Action, ev.Delay)
		if ev.For > 0 {
			ev := ev
			wg.Add(1)
			go func() {
				defer wg.Done()
				select {
				case <-stop:
				case <-time.After(ev.For):
				}
				revertChaos(targets, ev.Action)
			}()
		}
	}
}

func liveLinks(targets []*ChaosProxy) int {
	n := 0
	for _, p := range targets {
		n += p.Links()
	}
	return n
}

func fireChaos(targets []*ChaosProxy, action ChaosAction, delay time.Duration) {
	for _, p := range targets {
		switch action {
		case ChaosSever:
			p.SeverAll()
		case ChaosDelay:
			p.SetDelay(delay)
		case ChaosClearDelay:
			p.SetDelay(0)
		case ChaosRefuse:
			p.StopAccepting()
		case ChaosResume:
			_ = p.ResumeAccepting()
		}
	}
}

func revertChaos(targets []*ChaosProxy, action ChaosAction) {
	for _, p := range targets {
		switch action {
		case ChaosDelay:
			p.SetDelay(0)
		case ChaosRefuse:
			_ = p.ResumeAccepting() // no-op error once the proxy closed
		}
	}
}
