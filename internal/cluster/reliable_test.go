package cluster

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
	"repro/internal/topology"
)

// telValue reads one worker-labelled transport counter from a test
// registry — the same series the worker registered in initTelemetry.
func telValue(reg *telemetry.Registry, base string, worker int) int64 {
	return reg.Counter(telemetry.Name(base, "worker", fmt.Sprint(worker))).Value()
}

// sumTel totals a worker-labelled counter across all per-worker
// registries.
func sumTel(regs []*telemetry.Registry, base string) int64 {
	var total int64
	for id, reg := range regs {
		if reg != nil {
			total += telValue(reg, base, id)
		}
	}
	return total
}

// instrument gives every worker its own telemetry registry so tests can
// assert on transport counters after the run.
func instrument(regs []*telemetry.Registry) func(*Worker) {
	return func(w *Worker) {
		regs[w.id] = telemetry.NewRegistry()
		w.Telemetry = regs[w.id]
	}
}

// joinOracle is the brute-force pair set for twoStreamSpout's
// interleaved keyed stream (even = left, odd = right, match on key%7).
func joinOracle(n int) map[string]bool {
	want := make(map[string]bool)
	for l := 0; l < n; l += 2 {
		for r := 1; r < n; r += 2 {
			if l%7 == r%7 {
				want[fmt.Sprintf("%d-%d", l, r)] = true
			}
		}
	}
	return want
}

// TestScheduledChaosParity is the delivery-semantics acceptance test:
// a four-worker keyed join runs under a seeded, deterministic schedule
// of severs, delays and refused dials — with no worker killed — and
// must still produce the exact oracle pair multiset: every tuple
// executed exactly once, zero copies dropped. Each seed reproduces the
// identical fault sequence at the identical stream offsets, so a
// failure here is replayable from the seed alone. Acks are slowed and
// the stream paced so the guaranteed mid-stream sever finds frames in
// the resend buffers: the run must survive on replay, not luck.
//
// The full matrix runs under both wire formats: the binary data plane
// must uphold exactly the guarantees the gob path established —
// exact oracle multiset, zero drops, provable resends — with its
// per-connection dictionaries reset and replayed batches re-encoded
// after every sever.
func TestScheduledChaosParity(t *testing.T) {
	for _, format := range []string{WireGob, WireBinary} {
		for _, seed := range []int64{1, 7, 42} {
			format, seed := format, seed
			t.Run(fmt.Sprintf("wire=%s/seed=%d", format, seed), func(t *testing.T) {
				const n, workers = 240, 4
				mu := &sync.Mutex{}
				pairs := make(map[string]bool)
				execs := 0
				makeBuilder := func() *topology.Builder {
					b := topology.NewBuilder()
					b.MaxPending(8)
					b.SetSpout("src", func(int) topology.Spout {
						return &pacedSpout{Spout: &twoStreamSpout{n: n}, every: 200 * time.Microsecond}
					}, 1)
					b.SetBolt("join", func(int) topology.Bolt {
						return &countingJoinBolt{hashJoinBolt: newHashJoinBolt(mu, pairs), execs: &execs}
					}, 4).
						FieldsGroupingOn("src", "left", "key").
						FieldsGroupingOn("src", "right", "key")
					return b
				}
				regs := make([]*telemetry.Registry, workers)
				inst := instrument(regs)
				ws, proxies, result := startChaosCluster(t, makeBuilder, workers, func(w *Worker) {
					inst(w)
					w.WireFormat = format
					// Slow acks: sequenced frames linger unacknowledged, so the
					// severs below replay real traffic instead of empty buffers.
					w.AckEvery = 1 << 30
					w.AckInterval = 25 * time.Millisecond
				})

				sched := RandomSchedule(seed, 6, workers, n/2)
				// A guaranteed all-links sever a third of the way in, on top of
				// whatever the seed drew. Out-of-threshold order is fine: Run
				// fires an event as soon as its threshold is already met.
				sched.Events = append(sched.Events, ChaosEvent{AtCopies: n / 3, Worker: -1, Action: ChaosSever})
				stop := make(chan struct{})
				schedDone := make(chan struct{})
				go func() {
					defer close(schedDone)
					sched.Run(proxies, func() int64 {
						var sent int64
						for _, w := range ws {
							s, _ := w.Counters()
							sent += s
						}
						return sent
					}, stop)
				}()

				stats := awaitResult(t, result)
				close(stop)
				<-schedDone

				if len(stats.Failures) != 0 {
					t.Fatalf("failures: %v", stats.Failures)
				}
				if stats.SentCopies == 0 || stats.SentCopies != stats.ExecCopies {
					t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
				}
				if dropped := sumTel(regs, "cluster_copies_dropped_total"); dropped != 0 {
					t.Errorf("cluster_copies_dropped_total = %d, want 0", dropped)
				}
				mu.Lock()
				defer mu.Unlock()
				if execs != n {
					t.Errorf("join executed %d tuples, want exactly %d (drops or duplicates)", execs, n)
				}
				want := joinOracle(n)
				if len(pairs) != len(want) {
					t.Errorf("join produced %d pairs, oracle has %d", len(pairs), len(want))
				}
				for p := range want {
					if !pairs[p] {
						t.Errorf("missing pair %s", p)
					}
				}
				resent := sumTel(regs, "cluster_resent_frames_total")
				if resent == 0 {
					t.Error("schedule severed live traffic but nothing was resent")
				}
				t.Logf("seed %d: resent=%d dedup=%d acks=%d",
					seed, resent,
					sumTel(regs, "cluster_dedup_dropped_total"),
					sumTel(regs, "cluster_acks_sent_total"))
			})
		}
	}
}

// pacedSpout throttles an inner spout so a chaos schedule's mid-stream
// events interleave with live traffic instead of firing after the
// burst has already drained.
type pacedSpout struct {
	topology.Spout
	every time.Duration
}

func (s *pacedSpout) NextTuple(c topology.Collector) bool {
	time.Sleep(s.every)
	return s.Spout.NextTuple(c)
}

// countingJoinBolt wraps hashJoinBolt with an execute counter so the
// parity test can assert exactly-once effect (count == emitted tuples).
type countingJoinBolt struct {
	*hashJoinBolt
	execs *int
}

func (b *countingJoinBolt) Execute(t topology.Tuple, c topology.Collector) {
	b.mu.Lock()
	*b.execs++
	b.mu.Unlock()
	b.hashJoinBolt.Execute(t, c)
}

// TestResendAfterSever suppresses acks, parks the stream at a gate
// with sequenced frames sitting unacknowledged in a resend buffer,
// severs every link, and checks that replay on the fresh connections
// delivers everything exactly once: the sum is exact, frames were
// provably resent, and the receiver deduplicated rather than
// double-executing. The gate guarantees the run cannot complete before
// the sever lands. Runs under both wire formats: the binary path must
// re-encode replayed batches against the fresh connection's empty
// dictionary, not the severed one's.
func TestResendAfterSever(t *testing.T) {
	for _, format := range []string{WireGob, WireBinary} {
		format := format
		t.Run("wire="+format, func(t *testing.T) {
			const n1, n2 = 150, 150
			const n = n1 + n2
			gate := make(chan struct{})
			mu := &sync.Mutex{}
			sum, cnt := 0, 0
			makeBuilder := func() *topology.Builder {
				b := topology.NewBuilder()
				b.SetSpout("src", func(int) topology.Spout { return &gatedSpout{n1: n1, n2: n2, gate: gate} }, 1)
				b.SetBolt("sink", func(int) topology.Bolt {
					return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
				}, 2).ShuffleGrouping("src")
				return b
			}
			regs := make([]*telemetry.Registry, 2)
			inst := instrument(regs)
			ws, proxies, result := startChaosCluster(t, makeBuilder, 2, func(w *Worker) {
				inst(w)
				w.WireFormat = format
				// No acks: every sequenced frame stays buffered, so the sever
				// below is guaranteed to trigger a replay.
				w.AckEvery = 1 << 30
				w.AckInterval = time.Hour
			})

			deadline := time.Now().Add(10 * time.Second)
			for {
				unacked, links := 0, 0
				for _, w := range ws {
					unacked += w.UnackedFrames()
				}
				for _, p := range proxies {
					links += p.Links()
				}
				// Wait for the proxy to register the link: a sever that lands
				// between the peer's kernel-level connect and the proxy's accept
				// cuts nothing.
				if unacked > 0 && links > 0 && sumTel(regs, "cluster_frames_sent_total") > 0 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatal("no unacked sent frames ever observed")
				}
				time.Sleep(time.Millisecond)
			}
			for _, p := range proxies {
				p.SeverAll()
			}
			close(gate)

			stats := awaitResult(t, result)
			mu.Lock()
			defer mu.Unlock()
			if cnt != n {
				t.Errorf("received %d tuples, want %d", cnt, n)
			}
			if want := n * (n - 1) / 2; sum != want {
				t.Errorf("sum = %d, want %d", sum, want)
			}
			if len(stats.Failures) != 0 {
				t.Errorf("failures: %v", stats.Failures)
			}
			if resent := sumTel(regs, "cluster_resent_frames_total"); resent == 0 {
				t.Errorf("sever of unacked frames did not trigger a resend (sent=%d redials=%d dedup=%d acksSent=%d acksRecv=%d)",
					sumTel(regs, "cluster_frames_sent_total"),
					sumTel(regs, "cluster_peer_redials_total"),
					sumTel(regs, "cluster_dedup_dropped_total"),
					sumTel(regs, "cluster_acks_sent_total"),
					sumTel(regs, "cluster_acks_received_total"))
			}
			if dropped := sumTel(regs, "cluster_copies_dropped_total"); dropped != 0 {
				t.Errorf("cluster_copies_dropped_total = %d, want 0", dropped)
			}
		})
	}
}

// TestResendBufferBackpressure shrinks the resend buffer to a handful
// of frames so dispatch repeatedly blocks on unacked capacity; acks
// must drain the buffer and the run must still complete exactly.
func TestResendBufferBackpressure(t *testing.T) {
	const n = 200
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: n} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, 2).ShuffleGrouping("src")
		return b
	}
	_, _, result := startChaosCluster(t, makeBuilder, 2, func(w *Worker) {
		w.ResendBuffer = 2
		w.AckEvery = 1
		w.AckInterval = time.Millisecond
	})
	stats := awaitResult(t, result)
	mu.Lock()
	defer mu.Unlock()
	if cnt != n {
		t.Errorf("received %d tuples, want %d", cnt, n)
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if len(stats.Failures) != 0 {
		t.Errorf("failures: %v", stats.Failures)
	}
}

// TestIdleAckFlush parks the stream mid-run with fewer deliveries than
// AckEvery, so only the idle ack timer can acknowledge the tail; the
// quiescence check (which demands empty resend buffers) proves it did.
func TestIdleAckFlush(t *testing.T) {
	const n1, n2 = 30, 30
	gate := make(chan struct{})
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &gatedSpout{n1: n1, n2: n2, gate: gate} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, 2).ShuffleGrouping("src")
		return b
	}
	regs := make([]*telemetry.Registry, 2)
	ws, _, result := startChaosCluster(t, makeBuilder, 2, instrument(regs))

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := cnt == n1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first half never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// AckEvery (64) exceeds the deliveries so far, so inline acks never
	// fired; only the idle timer can have emptied the resend buffers.
	awaitQuiesce(t, ws)
	if acks := sumTel(regs, "cluster_acks_sent_total"); acks == 0 {
		t.Error("idle ack timer sent no acks")
	}
	close(gate)

	awaitResult(t, result)
	mu.Lock()
	defer mu.Unlock()
	if cnt != n1+n2 {
		t.Errorf("received %d tuples, want %d", cnt, n1+n2)
	}
}

// TestHungWorkerLeaseExpiry wedges a worker mid-run — its control loop
// swallows frames and its heartbeats stop, but every socket stays open
// — and requires the coordinator's heartbeat lease to surface it as
// WorkerDied within a few lease windows, naming the hung worker.
func TestHungWorkerLeaseExpiry(t *testing.T) {
	const workers = 2
	coord, err := NewCoordinator(workers)
	if err != nil {
		t.Fatal(err)
	}
	coord.LeaseTimeout = 150 * time.Millisecond
	mu := &sync.Mutex{}
	cnt := 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.MaxPending(8)
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 200000} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return slowCountBolt{mu: mu, cnt: &cnt}
		}, 2).ShuffleGrouping("src")
		return b
	}
	ws := make([]*Worker, workers)
	werrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(i, workers, makeBuilder(), coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		w.HeartbeatInterval = 20 * time.Millisecond
		ws[i] = w
	}
	for _, w := range ws {
		w := w
		go func() { werrs <- w.Run() }()
	}
	result := make(chan error, 1)
	go func() {
		_, err := coord.Run()
		result <- err
	}()

	// Let the stream get underway, then wedge worker 1.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		started := cnt > 10
		mu.Unlock()
		if started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream never started")
		}
		time.Sleep(time.Millisecond)
	}
	ws[1].Hang()

	select {
	case err := <-result:
		var wd *WorkerDied
		if !errors.As(err, &wd) {
			t.Fatalf("coordinator returned %v, want WorkerDied", err)
		}
		if wd.Worker != 1 {
			t.Errorf("WorkerDied.Worker = %d, want 1", wd.Worker)
		}
		if !strings.Contains(err.Error(), "lease") {
			t.Errorf("error %q does not mention the lease", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never detected the hung worker")
	}
	// Both workers — including the wedged one, whose control socket the
	// coordinator closed — must unwind.
	for i := 0; i < workers; i++ {
		select {
		case <-werrs:
		case <-time.After(10 * time.Second):
			t.Fatal("worker did not unwind after lease expiry")
		}
	}
}

// TestRandomScheduleDeterministic: the same seed must yield the same
// fault script, and different seeds must (for these inputs) differ —
// the reproducibility contract chaos runs are debugged with.
func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(99, 8, 4, 1000)
	b := RandomSchedule(99, 8, 4, 1000)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].AtCopies < a.Events[i-1].AtCopies {
			t.Fatalf("events not sorted by AtCopies: %+v", a.Events)
		}
	}
	c := RandomSchedule(100, 8, 4, 1000)
	same := len(a.Events) == len(c.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != c.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 99 and 100 generated identical schedules")
	}
}
