package cluster

// Elastic rescale: the coordinator-side protocol that grows or shrinks
// a live cluster without replaying the source. The timeline is
//
//	joiners  — grow only: wait for the new workers' Joining hellos
//	loads    — every live worker reports its hosted tasks + exec counts
//	plan     — choose departing workers (shrink) and a minimal move set
//	pause    — spouts park at their window frontier (framePause/Paused)
//	quiesce  — probe until sent == executed twice: nothing in flight
//	welcome  — joiners receive the epoch-stamped table + address book
//	rescale  — frameRescale broadcasts the successor epoch and moves;
//	           workers stream moving tasks' snapshots over kind=state
//	           frames and reply frameRescaleReady when buffers drain
//	retire   — departing workers ship final stats (folded into the
//	           coordinator's base counters) and exit
//	resume   — survivors retire departed peer links and unpark spouts
//
// Everything before pause leaves the cluster untouched, so those
// failures surface as plain errors to the Rescale caller. From pause
// onward a failure is fatal: the run aborts and the caller's recovery
// machinery (checkpoint restore) takes over — the same escalation path
// as a worker death.

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/topology"
)

// TaskLoad describes one hosted task in a frameLoadsReply: where it
// lives, how many tuples it has executed there, and whether the
// placement may move it (spouts are pinned to their worker — their
// in-memory read position cannot be streamed).
type TaskLoad struct {
	Comp    string
	Task    int
	Worker  int
	Load    int64
	Movable bool
}

// migrationChunk caps one kind=state frame's payload; a snapshot
// larger than this streams as several sequenced chunks.
const migrationChunk = 256 << 10

type rescaleReq struct {
	n    int
	done chan struct{}
	err  error
}

type infoReq struct {
	done  chan struct{}
	table map[string][]int
	epoch uint64
	err   error
}

// Rescale asks the running cluster to change to n workers. Growing
// requires the extra workers to have dialled in with Joining hellos
// (NewJoiningWorker) before or shortly after the call. The request is
// serviced by the coordinator's control loop between probe rounds;
// the call blocks until the rescale completes or fails. A failure
// before the cluster was touched (bad n, missing joiners, a shrink
// that would evict a spout) leaves the run unharmed; a failure
// mid-protocol aborts the run, surfacing through Coordinator.Run.
func (c *Coordinator) Rescale(n int) error {
	req := &rescaleReq{n: n, done: make(chan struct{})}
	select {
	case c.rescaleCh <- req:
	case <-c.finished:
		return errors.New("cluster: rescale after run finished")
	}
	select {
	case <-req.done:
		return req.err
	case <-c.finished:
		select {
		case <-req.done:
			return req.err
		default:
			return errors.New("cluster: run finished during rescale")
		}
	}
}

// PlacementInfo reports the live placement table and its epoch,
// assembled from a loads round against the running workers (the
// coordinator holds no table of its own — the workers are the source
// of truth). Serviced between probe rounds like Rescale.
func (c *Coordinator) PlacementInfo() (map[string][]int, uint64, error) {
	req := &infoReq{done: make(chan struct{})}
	select {
	case c.infoCh <- req:
	case <-c.finished:
		return nil, 0, errors.New("cluster: placement query after run finished")
	}
	select {
	case <-req.done:
		return req.table, req.epoch, req.err
	case <-c.finished:
		select {
		case <-req.done:
			return req.table, req.epoch, req.err
		default:
			return nil, 0, errors.New("cluster: run finished during placement query")
		}
	}
}

// acceptJoiners runs for the life of the listener once the initial
// worker set has registered: late hellos carrying Joining are queued
// for the next rescale; anything else is a stray connection and is
// dropped.
func (c *Coordinator) acceptJoiners() {
	for {
		raw, err := c.ln.Accept()
		if err != nil {
			return // listener closed with the run
		}
		go func() {
			cn := newConn(raw)
			hello, err := cn.recv()
			if err != nil || hello.Kind != frameHello || !hello.Joining {
				cn.close()
				return
			}
			l := &workerLink{id: hello.WorkerID, c: cn, inbox: make(chan *envelope, 4), addr: hello.DataAddr}
			l.lastBeat.Store(time.Now().UnixNano())
			select {
			case c.joinCh <- l:
			case <-c.finished:
				cn.close()
			}
		}()
	}
}

// doRescale runs one rescale against the live links/addresses maps
// (owned by the Run goroutine, mutated in place). fatal reports
// whether the failure happened after the protocol started mutating
// cluster state — the Run loop then aborts the run.
func (c *Coordinator) doRescale(n int, links map[int]*workerLink, addresses map[int]string) (err error, fatal bool) {
	begin := time.Now()
	cur := len(links)
	if n < 1 {
		return fmt.Errorf("cluster: rescale to %d workers", n), false
	}

	// Grow: collect the joining workers' links. They idle (blocked on
	// their handshake recv) until welcomed below.
	var joiners []*workerLink
	closeJoiners := func() {
		for _, j := range joiners {
			j.c.close()
		}
	}
	if n > cur {
		deadline := time.NewTimer(c.joinTimeout())
		defer deadline.Stop()
		for cur+len(joiners) < n {
			select {
			case j := <-c.joinCh:
				if _, dup := links[j.id]; dup {
					closeJoiners()
					return fmt.Errorf("cluster: joining worker reuses live id %d", j.id), false
				}
				joiners = append(joiners, j)
			case <-deadline.C:
				closeJoiners()
				return fmt.Errorf("cluster: rescale to %d: %d joining workers never arrived", n, n-cur-len(joiners)), false
			}
		}
	}

	// Loads round: learn the live table and per-task activity. Hosting
	// cannot change under us (no migration is running), so the table is
	// exact; the load values are a live sample, which is all the
	// planner needs.
	loads, err := c.collectLoads(links)
	if err != nil {
		closeJoiners()
		return err, true
	}
	table, err := tableFromLoads(loads)
	if err != nil {
		closeJoiners()
		return err, true
	}
	pl := PlacementAt(c.epoch, cur, table)

	// Shrink: depart the highest worker ids that host no pinned
	// (spout) task. Validated before anything pauses, so an impossible
	// shrink is a benign error.
	pinned := make(map[int]bool)
	for _, tl := range loads {
		if !tl.Movable {
			pinned[tl.Worker] = true
		}
	}
	departing := make(map[int]bool)
	if n < cur {
		ids := make([]int, 0, len(links))
		for id := range links {
			ids = append(ids, id)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ids)))
		for _, id := range ids {
			if len(departing) == cur-n {
				break
			}
			if !pinned[id] {
				departing[id] = true
			}
		}
		if len(departing) < cur-n {
			closeJoiners()
			return fmt.Errorf("cluster: cannot shrink to %d: only %d of %d workers are free of pinned spout tasks",
				n, cur-len(pinned), cur), false
		}
	}

	// Plan the migration and the successor placement.
	targets := make([]int, 0, n)
	for id := range links {
		if !departing[id] {
			targets = append(targets, id)
		}
	}
	for _, j := range joiners {
		targets = append(targets, j.id)
	}
	sort.Ints(targets)
	moves := PlanMoves(loads, departing, targets)
	next, err := pl.Apply(c.epoch+1, n, moves)
	if err != nil {
		closeJoiners()
		return err, false
	}

	// ---- Point of no return: the cluster is now being reshaped. ----

	// Park every spout at its window frontier, then drain the pipeline.
	for id, l := range links {
		if err := c.sendCtl(l, &envelope{Kind: framePause}); err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
	}
	frontier := -1
	for id, l := range links {
		rep, err := c.awaitFrame(l, framePaused)
		if err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
		if rep.Window > frontier {
			frontier = rep.Window
		}
	}
	if err := c.quiesce(links); err != nil {
		return err, true
	}

	// Welcome the joiners: they cannot derive the current table from
	// (spec, workers) — earlier rescales may have reshaped it — so the
	// epoch-stamped table travels with the address book.
	for _, j := range joiners {
		links[j.id] = j
		addresses[j.id] = j.addr
	}
	addrCopy := make(map[int]string, len(addresses))
	for id, a := range addresses {
		addrCopy[id] = a
	}
	for _, j := range joiners {
		go j.read()
		if err := c.sendCtl(j, &envelope{Kind: frameStart, Addresses: addrCopy, Table: table, Epoch: c.epoch, Workers: cur}); err != nil {
			return &WorkerDied{Worker: j.id, Err: err}, true
		}
	}

	// Broadcast the rescale; workers migrate and reply ready once every
	// streamed chunk is acknowledged and every expected task installed.
	departList := make([]int, 0, len(departing))
	for id := range departing {
		departList = append(departList, id)
	}
	sort.Ints(departList)
	for id, l := range links {
		e := &envelope{Kind: frameRescale, Epoch: c.epoch + 1, Workers: n,
			Moves: moves, Departing: departList, Addresses: addrCopy, Window: frontier}
		if err := c.sendCtl(l, e); err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
	}
	for id, l := range links {
		if _, err := c.awaitFrame(l, frameRescaleReady); err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
	}

	// Retire the departing workers, folding their final monotonic
	// counters into the coordinator's base: the global sent == executed
	// probe invariant must keep seeing their contribution (a worker's
	// own sent and executed need not be equal — only the global sums
	// are), and their component stats belong in the final merge.
	for _, id := range departList {
		l := links[id]
		if err := c.sendCtl(l, &envelope{Kind: frameRetire}); err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
		done, err := c.awaitFrame(l, frameDone)
		if err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
		c.foldBase(done.Stats)
		l.c.close()
		delete(links, id)
		delete(addresses, id)
	}

	// Resume the survivors: retire departed peer links (and their
	// telemetry series), unpark the spouts under the new epoch.
	for id, l := range links {
		if err := c.sendCtl(l, &envelope{Kind: frameResume, Departing: departList}); err != nil {
			return &WorkerDied{Worker: id, Err: err}, true
		}
	}

	c.epoch++
	c.lastTable = next.Table()
	if c.Telemetry != nil {
		c.Telemetry.Counter("cluster_rescales_total").Inc()
		c.Telemetry.Gauge("cluster_epoch").Set(float64(c.epoch))
		c.Telemetry.Gauge("rescale_duration_seconds").Set(time.Since(begin).Seconds())
	}
	return nil, false
}

// quiesce probes until two consecutive identical snapshots with
// sent == executed, ignoring SpoutsDone: the spouts are parked, not
// exhausted. Afterwards nothing is queued, executing, or in flight.
func (c *Coordinator) quiesce(links map[int]*workerLink) error {
	var prev int64 = -1
	for seq := 1 << 20; ; seq++ {
		sent, exec, _, err := c.probe(links, seq)
		if err != nil {
			return err
		}
		sent += c.baseStats.SentCopies
		exec += c.baseStats.ExecCopies
		if sent == exec && sent == prev {
			return nil
		}
		prev = sent
		if sent != exec {
			prev = -1
			time.Sleep(time.Millisecond)
		}
	}
}

// collectLoads runs one loads round: every live worker reports its
// hosted tasks with their execution counts and movability.
func (c *Coordinator) collectLoads(links map[int]*workerLink) ([]TaskLoad, error) {
	for id, l := range links {
		if err := c.sendCtl(l, &envelope{Kind: frameLoads}); err != nil {
			return nil, &WorkerDied{Worker: id, Err: err}
		}
	}
	var all []TaskLoad
	for id, l := range links {
		rep, err := c.awaitFrame(l, frameLoadsReply)
		if err != nil {
			return nil, &WorkerDied{Worker: id, Err: err}
		}
		all = append(all, rep.Loads...)
	}
	return all, nil
}

// tableFromLoads reassembles the full placement table from the union
// of per-worker hosting reports; every task must be hosted exactly
// once or the cluster's routing state has already forked.
func tableFromLoads(loads []TaskLoad) (map[string][]int, error) {
	size := make(map[string]int)
	for _, tl := range loads {
		if tl.Task < 0 {
			return nil, fmt.Errorf("cluster: negative task index in loads report: %s[%d]", tl.Comp, tl.Task)
		}
		if tl.Task+1 > size[tl.Comp] {
			size[tl.Comp] = tl.Task + 1
		}
	}
	table := make(map[string][]int, len(size))
	for comp, sz := range size {
		assign := make([]int, sz)
		for i := range assign {
			assign[i] = -1
		}
		table[comp] = assign
	}
	for _, tl := range loads {
		if table[tl.Comp][tl.Task] != -1 {
			return nil, fmt.Errorf("cluster: task %s[%d] reported by two workers", tl.Comp, tl.Task)
		}
		table[tl.Comp][tl.Task] = tl.Worker
	}
	for comp, assign := range table {
		for task, w := range assign {
			if w == -1 {
				return nil, fmt.Errorf("cluster: task %s[%d] hosted nowhere", comp, task)
			}
		}
	}
	return table, nil
}

// PlanMoves computes the migration set for a rescale: every movable
// task on a departing worker is forced off (hottest first, onto the
// least-loaded target), then a single hottest-first rebalance pass
// moves a task only when its new home stays strictly below its old
// home's load — so the plan moves the fewest, hottest tasks rather
// than reshuffling everything. Each task weighs its executed-tuple
// count plus one, so plain task-count balancing emerges when the
// counters are cold (a rescale before any data flowed). The result is
// deterministic: ties break on component name, then task index.
func PlanMoves(loads []TaskLoad, departing map[int]bool, targets []int) []Move {
	weight := func(tl TaskLoad) int64 { return tl.Load + 1 }
	cur := make(map[int]int64, len(targets))
	for _, id := range targets {
		cur[id] = 0
	}
	var forced, movable []TaskLoad
	for _, tl := range loads {
		if departing[tl.Worker] {
			forced = append(forced, tl)
			continue
		}
		cur[tl.Worker] += weight(tl)
		if tl.Movable {
			movable = append(movable, tl)
		}
	}
	byHeat := func(s []TaskLoad) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Load != s[j].Load {
				return s[i].Load > s[j].Load
			}
			if s[i].Comp != s[j].Comp {
				return s[i].Comp < s[j].Comp
			}
			return s[i].Task < s[j].Task
		})
	}
	byHeat(forced)
	byHeat(movable)
	coldest := func() int {
		best, bestLoad := -1, int64(0)
		for _, id := range targets {
			if best == -1 || cur[id] < bestLoad {
				best, bestLoad = id, cur[id]
			}
		}
		return best
	}
	var moves []Move
	for _, tl := range forced {
		to := coldest()
		moves = append(moves, Move{Comp: tl.Comp, Task: tl.Task, From: tl.Worker, To: to})
		cur[to] += weight(tl)
	}
	for _, tl := range movable {
		to := coldest()
		if to == tl.Worker {
			continue
		}
		w := weight(tl)
		if cur[to]+w >= cur[tl.Worker] {
			continue // moving it would not narrow the spread
		}
		moves = append(moves, Move{Comp: tl.Comp, Task: tl.Task, From: tl.Worker, To: to})
		cur[tl.Worker] -= w
		cur[to] += w
	}
	return moves
}

// foldBase merges a retiring worker's final statistics into the base
// the coordinator adds to every later probe sum and the final merge.
func (c *Coordinator) foldBase(s topology.Stats) {
	if c.baseStats.Emitted == nil {
		c.baseStats.Emitted = make(map[string]int64)
		c.baseStats.Executed = make(map[string]int64)
	}
	for comp, n := range s.Emitted {
		c.baseStats.Emitted[comp] += n
	}
	for comp, n := range s.Executed {
		c.baseStats.Executed[comp] += n
	}
	c.baseStats.SentCopies += s.SentCopies
	c.baseStats.ExecCopies += s.ExecCopies
	c.baseStats.Failures = append(c.baseStats.Failures, s.Failures...)
}

// joinTimeout bounds how long a grow waits for its joining workers.
func (c *Coordinator) joinTimeout() time.Duration {
	if c.ProbeTimeout > 0 {
		return c.ProbeTimeout
	}
	return 30 * time.Second
}
