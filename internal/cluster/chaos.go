package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// ChaosProxy is a TCP fault-injection proxy for exercising the
// substrate's failure paths: it forwards byte streams to a fixed
// target and can, while a topology is running, delay traffic, sever
// every live link, and stop accepting new connections. Pointing a
// worker's AdvertiseAddr at a proxy in front of its data plane makes
// all inbound peer traffic of that worker interposable:
//
//	addr, _ := w.Listen()
//	proxy, _ := NewChaosProxy(addr)
//	w.AdvertiseAddr = proxy.Addr()
//
// Severing a link surfaces as a send error on the dialling worker,
// which evicts the cached connection and redials through the proxy
// with backoff; stopping accepts surfaces as dial errors, exercising
// the same retry loop from a cold start.
type ChaosProxy struct {
	target string
	delay  atomicDuration

	mu     sync.Mutex
	ln     net.Listener
	links  map[net.Conn]net.Conn // accepted -> upstream
	closed bool
}

// atomicDuration is a mutex-free delay knob shared with the copy
// goroutines.
type atomicDuration struct {
	mu sync.Mutex
	d  time.Duration
}

func (a *atomicDuration) get() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.d
}

func (a *atomicDuration) set(d time.Duration) {
	a.mu.Lock()
	a.d = d
	a.mu.Unlock()
}

// NewChaosProxy starts a proxy on an ephemeral loopback port that
// forwards every accepted connection to target.
func NewChaosProxy(target string) (*ChaosProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("cluster: chaos proxy listen: %w", err)
	}
	p := &ChaosProxy{target: target, ln: ln, links: make(map[net.Conn]net.Conn)}
	go p.acceptLoop(ln)
	return p, nil
}

// Addr is the proxy's listen address — advertise this in place of the
// real data-plane address.
func (p *ChaosProxy) Addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ln.Addr().String()
}

// SetDelay injects the given latency before each forwarded chunk in
// both directions (0 restores pass-through).
func (p *ChaosProxy) SetDelay(d time.Duration) { p.delay.set(d) }

// SeverAll cuts every live link mid-stream. Established peer
// connections through the proxy observe a broken socket on their next
// send or receive.
func (p *ChaosProxy) SeverAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for down, up := range p.links {
		down.Close()
		up.Close()
	}
}

// Links reports the number of live proxied connections. A link only
// counts once the proxy has accepted it and dialled upstream, so a
// test that wants SeverAll to bite should wait for Links > 0: a peer's
// dial can complete at the kernel level (and its first frames sit in
// socket buffers) before the proxy has registered the connection.
func (p *ChaosProxy) Links() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// StopAccepting closes the listener so new dials are refused
// (connection refused, not a hang). ResumeAccepting reopens it on the
// same port.
func (p *ChaosProxy) StopAccepting() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ln.Close()
}

// ResumeAccepting re-binds the listener on the proxy's original port
// after StopAccepting.
func (p *ChaosProxy) ResumeAccepting() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("cluster: chaos proxy closed")
	}
	ln, err := net.Listen("tcp", p.ln.Addr().String())
	if err != nil {
		return fmt.Errorf("cluster: chaos proxy resume: %w", err)
	}
	p.ln = ln
	go p.acceptLoop(ln)
	return nil
}

// Close tears the proxy down: listener and all live links.
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	p.closed = true
	p.ln.Close()
	p.mu.Unlock()
	p.SeverAll()
}

func (p *ChaosProxy) acceptLoop(ln net.Listener) {
	for {
		down, err := ln.Accept()
		if err != nil {
			return // listener closed (StopAccepting or Close)
		}
		up, err := net.DialTimeout("tcp", p.target, 2*time.Second)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			down.Close()
			up.Close()
			return
		}
		p.links[down] = up
		p.mu.Unlock()
		go p.pump(down, up)
		go p.pump(up, down)
	}
}

// pump forwards src to dst chunk by chunk, applying the configured
// delay, until either side breaks; it then closes both and drops the
// link from the registry.
func (p *ChaosProxy) pump(src, dst net.Conn) {
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := p.delay.get(); d > 0 {
				time.Sleep(d)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				break
			}
		}
		if err != nil {
			break
		}
	}
	src.Close()
	dst.Close()
	p.mu.Lock()
	delete(p.links, src)
	delete(p.links, dst)
	p.mu.Unlock()
}
