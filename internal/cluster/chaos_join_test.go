package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/topology"
)

// twoStreamSpout interleaves keyed tuples on a "left" and a "right"
// stream, pausing at a gate mid-stream so the test can sever the data
// plane at a quiescent instant.
type twoStreamSpout struct {
	n    int
	gate <-chan struct{}
	next int
}

func (s *twoStreamSpout) Open(*topology.TaskContext) {}
func (s *twoStreamSpout) Close()                     {}
func (s *twoStreamSpout) NextTuple(c topology.Collector) bool {
	if s.next == s.n/2 && s.gate != nil {
		<-s.gate
	}
	if s.next >= s.n {
		return false
	}
	// The doc payload is dead weight for hashJoinBolt (it only reads key
	// and v) but forces every frame through the interning dictionary, so
	// chaos runs exercise delta shipping and post-sever re-encoding on
	// whichever wire format the worker uses.
	v := topology.Values{
		"key": s.next % 7,
		"v":   s.next,
		"doc": dictDoc(uint64(s.next+1), "side", fmt.Sprint(s.next%2), "host", fmt.Sprint(s.next%3)),
	}
	if s.next%2 == 0 {
		c.EmitTo("left", v)
	} else {
		c.EmitTo("right", v)
	}
	s.next++
	return true
}

// hashJoinBolt joins "left" and "right" tuples per key (fields
// grouping guarantees co-location) and records every output pair.
type hashJoinBolt struct {
	mu    *sync.Mutex
	pairs map[string]bool

	left  map[int][]int
	right map[int][]int
}

func newHashJoinBolt(mu *sync.Mutex, pairs map[string]bool) *hashJoinBolt {
	return &hashJoinBolt{mu: mu, pairs: pairs, left: make(map[int][]int), right: make(map[int][]int)}
}

func (b *hashJoinBolt) Prepare(*topology.TaskContext) {}
func (b *hashJoinBolt) Cleanup()                      {}
func (b *hashJoinBolt) Execute(t topology.Tuple, _ topology.Collector) {
	key := t.Values["key"].(int)
	v := t.Values["v"].(int)
	var matches []int
	if t.Stream == "left" {
		matches = b.right[key]
		b.left[key] = append(b.left[key], v)
	} else {
		matches = b.left[key]
		b.right[key] = append(b.right[key], v)
	}
	b.mu.Lock()
	for _, m := range matches {
		l, r := v, m
		if t.Stream != "left" {
			l, r = m, v
		}
		b.pairs[fmt.Sprintf("%d-%d", l, r)] = true
	}
	b.mu.Unlock()
}

// TestChaosJoinMatchesOracle runs a keyed stream join over bounded
// mailboxes on three workers, severs every peer connection
// mid-stream, and checks the final pair set against a brute-force
// oracle: reconnection must leave the join complete and exact.
func TestChaosJoinMatchesOracle(t *testing.T) {
	const n = 140
	gate := make(chan struct{})
	mu := &sync.Mutex{}
	pairs := make(map[string]bool)
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.MaxPending(8)
		b.SetSpout("src", func(int) topology.Spout { return &twoStreamSpout{n: n, gate: gate} }, 1)
		b.SetBolt("join", func(int) topology.Bolt {
			return newHashJoinBolt(mu, pairs)
		}, 4).
			FieldsGroupingOn("src", "left", "key").
			FieldsGroupingOn("src", "right", "key")
		return b
	}
	ws, proxies, result := startChaosCluster(t, makeBuilder, 3, nil)

	// Let the first half flow, then cut every established link.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var sent, exec int64
		for _, w := range ws {
			s, e := w.Counters()
			sent += s
			exec += e
		}
		if sent >= n/2 && sent == exec {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first half never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	awaitQuiesce(t, ws)
	for _, p := range proxies {
		p.SeverAll()
	}
	awaitPeerEviction(t, ws)
	close(gate)

	stats := awaitResult(t, result)
	if len(stats.Failures) != 0 {
		t.Fatalf("failures: %v", stats.Failures)
	}
	if stats.SentCopies == 0 || stats.SentCopies != stats.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
	}

	// Brute-force oracle over the same interleaved stream.
	want := make(map[string]bool)
	var lefts, rights []int
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			lefts = append(lefts, i)
		} else {
			rights = append(rights, i)
		}
	}
	for _, l := range lefts {
		for _, r := range rights {
			if l%7 == r%7 {
				want[fmt.Sprintf("%d-%d", l, r)] = true
			}
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(pairs) != len(want) {
		t.Fatalf("join produced %d pairs, oracle has %d", len(pairs), len(want))
	}
	for p := range want {
		if !pairs[p] {
			t.Errorf("missing pair %s", p)
		}
	}
}
