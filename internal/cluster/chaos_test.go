package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/topology"
)

// runResult carries a finished cluster run back to the test goroutine.
type runResult struct {
	stats topology.Stats
	err   error
}

// startChaosCluster wires every worker's data plane behind a
// ChaosProxy and starts the run; the caller observes completion on the
// returned channel and injects faults through the proxies meanwhile.
func startChaosCluster(t *testing.T, makeBuilder func() *topology.Builder, workers int, configure func(*Worker)) ([]*Worker, []*ChaosProxy, chan runResult) {
	t.Helper()
	coord, err := NewCoordinator(workers)
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]*Worker, workers)
	proxies := make([]*ChaosProxy, workers)
	werrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		w, err := NewWorker(i, workers, makeBuilder(), coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		addr, err := w.Listen()
		if err != nil {
			t.Fatal(err)
		}
		proxy, err := NewChaosProxy(addr)
		if err != nil {
			t.Fatal(err)
		}
		w.AdvertiseAddr = proxy.Addr()
		if configure != nil {
			configure(w)
		}
		ws[i] = w
		proxies[i] = proxy
	}
	t.Cleanup(func() {
		for _, p := range proxies {
			p.Close()
		}
	})
	for _, w := range ws {
		w := w
		go func() { werrs <- w.Run() }()
	}
	result := make(chan runResult, 1)
	go func() {
		stats, err := coord.Run()
		for i := 0; i < workers; i++ {
			if werr := <-werrs; werr != nil && err == nil {
				err = werr
			}
		}
		result <- runResult{stats, err}
	}()
	return ws, proxies, result
}

// awaitResult bounds how long a chaos run may take.
func awaitResult(t *testing.T, result chan runResult) topology.Stats {
	t.Helper()
	select {
	case r := <-result:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return r.stats
	case <-time.After(60 * time.Second):
		t.Fatal("cluster run did not terminate")
		return topology.Stats{}
	}
}

// awaitQuiesce polls the workers' transport counters until nothing is
// queued, executing, in flight, or awaiting an ack (sent == executed
// and empty resend buffers, stable across two consecutive reads) — the
// in-process mirror of the coordinator's double-probe argument. The
// unacked condition matters to tests that sever immediately after: a
// frame still in a resend buffer would be replayed on a fresh link,
// re-establishing the very connections the test expects evicted.
func awaitQuiesce(t *testing.T, ws []*Worker) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var prevSent, prevExec int64 = -1, -2
	for time.Now().Before(deadline) {
		var sent, exec int64
		unacked := 0
		for _, w := range ws {
			s, e := w.Counters()
			sent += s
			exec += e
			unacked += w.UnackedFrames()
		}
		if sent == exec && unacked == 0 && sent == prevSent && exec == prevExec {
			return
		}
		prevSent, prevExec = sent, exec
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("cluster did not quiesce")
}

// awaitPeerEviction waits until the breakage monitors have evicted
// every cached outbound connection after a sever.
func awaitPeerEviction(t *testing.T, ws []*Worker) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		live := 0
		for _, w := range ws {
			live += w.PeerConnections()
		}
		if live == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("peer connections not evicted after sever")
}

// gatedSpout emits n1 tuples, blocks until the gate opens, then emits
// n2 more — so a test can inject a fault at a quiescent instant with
// no tuple in flight.
type gatedSpout struct {
	n1, n2 int
	gate   <-chan struct{}
	next   int
}

func (s *gatedSpout) Open(*topology.TaskContext) {}
func (s *gatedSpout) Close()                     {}
func (s *gatedSpout) NextTuple(c topology.Collector) bool {
	if s.next == s.n1 {
		<-s.gate
	}
	if s.next >= s.n1+s.n2 {
		return false
	}
	c.Emit(topology.Values{"v": s.next})
	s.next++
	return true
}

// TestDeliverLocalRejectsNegativeTask: a malformed frame with a
// negative TargetTask must be recorded as a failure and compensated,
// not panic the read loop.
func TestDeliverLocalRejectsNegativeTask(t *testing.T) {
	b := topology.NewBuilder()
	b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 1} }, 1)
	b.SetBolt("sink", func(int) topology.Bolt { return doubleBolt{} }, 1).ShuffleGrouping("src")
	w, err := NewWorker(0, 1, b, "127.0.0.1:1")
	if err != nil {
		t.Fatal(err)
	}
	if w.deliverLocal("sink", -1, topology.Tuple{}) {
		t.Error("negative task must not deliver")
	}
	if _, exec := w.Counters(); exec != 1 {
		t.Errorf("executed = %d, want 1 compensation", exec)
	}
	if len(w.stats().Failures) != 1 {
		t.Errorf("failures = %v", w.stats().Failures)
	}
}

// TestSeverReconnect severs every established peer link at a quiescent
// instant mid-run: the breakage monitors evict the dead connections,
// the next dispatches redial with backoff, and the run completes with
// exact accounting and no tuple loss.
func TestSeverReconnect(t *testing.T) {
	const n1, n2 = 60, 60
	gate := make(chan struct{})
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &gatedSpout{n1: n1, n2: n2, gate: gate} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, 3).ShuffleGrouping("src")
		return b
	}
	ws, proxies, result := startChaosCluster(t, makeBuilder, 3, nil)

	// Wait for the first half to fully drain, then cut every link.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := cnt == n1
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first half never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	awaitQuiesce(t, ws)
	for _, p := range proxies {
		p.SeverAll()
	}
	awaitPeerEviction(t, ws)
	close(gate)

	stats := awaitResult(t, result)
	mu.Lock()
	defer mu.Unlock()
	if cnt != n1+n2 {
		t.Errorf("received %d tuples, want %d", cnt, n1+n2)
	}
	if want := (n1 + n2) * (n1 + n2 - 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	if len(stats.Failures) != 0 {
		t.Errorf("failures: %v", stats.Failures)
	}
	if stats.SentCopies == 0 || stats.SentCopies != stats.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
	}
}

// TestDialRetryBackoff refuses the very first peer dials (the sink
// worker's proxy is not accepting when the stream starts) and resumes
// accepting shortly after: the dispatch retry loop must absorb the
// outage without dropping a tuple.
func TestDialRetryBackoff(t *testing.T) {
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 40} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, 2).ShuffleGrouping("src")
		return b
	}
	ws, proxies, result := startChaosCluster(t, makeBuilder, 2, func(w *Worker) {
		w.SendRetries = 40
		w.RetryBackoff = 2 * time.Millisecond
		w.RetryBackoffMax = 20 * time.Millisecond
	})
	_ = ws
	// Refuse all new data-plane dials until the stream is underway.
	for _, p := range proxies {
		p.StopAccepting()
	}
	go func() {
		time.Sleep(100 * time.Millisecond)
		for _, p := range proxies {
			if err := p.ResumeAccepting(); err != nil {
				t.Error(err)
			}
		}
	}()
	stats := awaitResult(t, result)
	mu.Lock()
	defer mu.Unlock()
	if cnt != 40 {
		t.Errorf("received %d tuples, want 40", cnt)
	}
	if len(stats.Failures) != 0 {
		t.Errorf("failures: %v", stats.Failures)
	}
}

// TestDelayedLinksComplete injects latency on every link; the run just
// takes longer but stays exact.
func TestDelayedLinksComplete(t *testing.T) {
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 80} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, 2).ShuffleGrouping("src")
		return b
	}
	_, proxies, result := startChaosCluster(t, makeBuilder, 2, nil)
	for _, p := range proxies {
		p.SetDelay(time.Millisecond)
	}
	stats := awaitResult(t, result)
	mu.Lock()
	defer mu.Unlock()
	if cnt != 80 {
		t.Errorf("received %d tuples, want 80", cnt)
	}
	if stats.SentCopies != stats.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
	}
}

// TestBoundedMailboxesAcrossWorkers: a spout emitting an order of
// magnitude faster than the sinks drain must never grow a worker
// mailbox past the configured capacity, and the run still terminates
// exactly.
func TestBoundedMailboxesAcrossWorkers(t *testing.T) {
	const n, capacity = 400, 8
	mu := &sync.Mutex{}
	cnt := 0
	makeBuilder := func() *topology.Builder {
		b := topology.NewBuilder()
		b.MaxPending(capacity)
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: n} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return slowCountBolt{mu: mu, cnt: &cnt}
		}, 2).ShuffleGrouping("src")
		return b
	}
	ws, _, result := startChaosCluster(t, makeBuilder, 2, nil)
	stats := awaitResult(t, result)
	mu.Lock()
	received := cnt
	mu.Unlock()
	if received != n {
		t.Errorf("received %d tuples, want %d", received, n)
	}
	if stats.SentCopies != stats.ExecCopies {
		t.Errorf("copies sent = %d, executed = %d", stats.SentCopies, stats.ExecCopies)
	}
	for _, w := range ws {
		for comp, boxes := range w.boxes {
			for task := range boxes {
				box := boxes[task].Load()
				if box == nil {
					continue
				}
				if peak := box.peakLen(); peak > capacity {
					t.Errorf("worker %d %s[%d] peak queue %d exceeds capacity %d", w.id, comp, task, peak, capacity)
				}
			}
		}
	}
}

// slowCountBolt drains ~10x slower than countSpout emits.
type slowCountBolt struct {
	mu  *sync.Mutex
	cnt *int
}

func (b slowCountBolt) Prepare(*topology.TaskContext) {}
func (b slowCountBolt) Cleanup()                      {}
func (b slowCountBolt) Execute(topology.Tuple, topology.Collector) {
	time.Sleep(50 * time.Microsecond)
	b.mu.Lock()
	*b.cnt++
	b.mu.Unlock()
}
