package cluster

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"

	"repro/internal/topology"
)

// countSpout emits n integers.
type countSpout struct{ n, next int }

func (s *countSpout) Open(*topology.TaskContext) {}
func (s *countSpout) Close()                     {}
func (s *countSpout) NextTuple(c topology.Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.Emit(topology.Values{"v": s.next})
	s.next++
	return true
}

// sumBolt accumulates into a shared sink (works because the test
// workers share this process).
type sumBolt struct {
	mu  *sync.Mutex
	sum *int
	cnt *int
}

func (b *sumBolt) Prepare(*topology.TaskContext) {}
func (b *sumBolt) Cleanup()                      {}
func (b *sumBolt) Execute(t topology.Tuple, _ topology.Collector) {
	b.mu.Lock()
	*b.sum += t.Values["v"].(int)
	*b.cnt++
	b.mu.Unlock()
}

func init() { gob.Register(1) }

func TestPlacementRoundRobin(t *testing.T) {
	spec := []topology.ComponentSpec{
		{ID: "a", Parallelism: 3},
		{ID: "b", Parallelism: 2},
	}
	p, err := NewPlacement(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Global round-robin: a0->w0 a1->w1 a2->w0 b0->w1 b1->w0.
	wants := map[string][]int{"a": {0, 1, 0}, "b": {1, 0}}
	for comp, assign := range wants {
		for task, want := range assign {
			if got := p.WorkerFor(comp, task); got != want {
				t.Errorf("WorkerFor(%s,%d) = %d, want %d", comp, task, got, want)
			}
		}
	}
	if got := p.TasksOn("a", 0); len(got) != 2 {
		t.Errorf("TasksOn(a,0) = %v", got)
	}
	if _, err := NewPlacement(spec, 0); err == nil {
		t.Error("0 workers must fail")
	}
}

func TestPlacementPanicsUnknownTask(t *testing.T) {
	p, _ := NewPlacement([]topology.ComponentSpec{{ID: "a", Parallelism: 1}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p.WorkerFor("zz", 0)
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := newConn(a), newConn(b)
	defer ca.close()
	defer cb.close()
	want := &envelope{
		Kind:       frameTuple,
		TargetComp: "sink",
		TargetTask: 3,
		Tuple: topology.Tuple{
			Stream: "s",
			Source: "src",
			Values: topology.Values{"v": 42},
		},
	}
	go func() {
		if err := ca.send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := cb.recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.TargetComp != "sink" || got.TargetTask != 3 || got.Tuple.Values["v"].(int) != 42 {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

// runSum executes the count->sum topology over the given number of
// workers and checks losslessness.
func runSum(t *testing.T, workers, n, sinkTasks int) topology.Stats {
	t.Helper()
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	make1 := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: n} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, sinkTasks).ShuffleGrouping("src")
		return b
	}
	stats, err := Run(make1, workers)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if cnt != n {
		t.Errorf("received %d tuples, want %d", cnt, n)
	}
	if want := n * (n - 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
	return stats
}

func TestSingleWorker(t *testing.T) {
	stats := runSum(t, 1, 100, 2)
	if stats.Executed["sink"] != 100 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestMultiWorkerLossless(t *testing.T) {
	stats := runSum(t, 3, 500, 4)
	if stats.Executed["sink"] != 500 {
		t.Errorf("executed = %d", stats.Executed["sink"])
	}
	if len(stats.Failures) != 0 {
		t.Errorf("failures: %v", stats.Failures)
	}
}

// TestFieldsGroupingAcrossWorkers: equal keys land on the same task even
// when tasks live on different workers.
func TestFieldsGroupingAcrossWorkers(t *testing.T) {
	mu := &sync.Mutex{}
	byKey := make(map[int]map[int]bool)
	make1 := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &keyedSpout{n: 200} }, 1)
		b.SetBolt("sink", func(task int) topology.Bolt {
			return &keyRecorder{mu: mu, byKey: byKey, task: task}
		}, 4).FieldsGrouping("src", "key")
		return b
	}
	if _, err := Run(make1, 3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(byKey) != 10 {
		t.Fatalf("keys seen = %d", len(byKey))
	}
	for key, tasks := range byKey {
		if len(tasks) != 1 {
			t.Errorf("key %d reached %d tasks", key, len(tasks))
		}
	}
}

type keyedSpout struct{ n, next int }

func (s *keyedSpout) Open(*topology.TaskContext) {}
func (s *keyedSpout) Close()                     {}
func (s *keyedSpout) NextTuple(c topology.Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.Emit(topology.Values{"key": s.next % 10, "v": s.next})
	s.next++
	return true
}

type keyRecorder struct {
	mu    *sync.Mutex
	byKey map[int]map[int]bool
	task  int
}

func (b *keyRecorder) Prepare(*topology.TaskContext) {}
func (b *keyRecorder) Cleanup()                      {}
func (b *keyRecorder) Execute(t topology.Tuple, _ topology.Collector) {
	key := t.Values["key"].(int)
	b.mu.Lock()
	if b.byKey[key] == nil {
		b.byKey[key] = make(map[int]bool)
	}
	b.byKey[key][b.task] = true
	b.mu.Unlock()
}

// TestAllGroupingAcrossWorkers: every task receives every tuple.
func TestAllGroupingAcrossWorkers(t *testing.T) {
	mu := &sync.Mutex{}
	perTask := make(map[int]int)
	make1 := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 50} }, 1)
		b.SetBolt("sink", func(task int) topology.Bolt {
			return &taskCounter{mu: mu, perTask: perTask, task: task}
		}, 3).AllGrouping("src")
		return b
	}
	if _, err := Run(make1, 2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for task := 0; task < 3; task++ {
		if perTask[task] != 50 {
			t.Errorf("task %d received %d, want 50", task, perTask[task])
		}
	}
}

type taskCounter struct {
	mu      *sync.Mutex
	perTask map[int]int
	task    int
}

func (b *taskCounter) Prepare(*topology.TaskContext) {}
func (b *taskCounter) Cleanup()                      {}
func (b *taskCounter) Execute(topology.Tuple, topology.Collector) {
	b.mu.Lock()
	b.perTask[b.task]++
	b.mu.Unlock()
}

// TestMultiStageAcrossWorkers chains two bolts so tuples cross the wire
// twice.
func TestMultiStageAcrossWorkers(t *testing.T) {
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	make1 := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 100} }, 1)
		b.SetBolt("double", func(int) topology.Bolt { return doubleBolt{} }, 2).ShuffleGrouping("src")
		b.SetBolt("sink", func(int) topology.Bolt {
			return &sumBolt{mu: mu, sum: &sum, cnt: &cnt}
		}, 2).ShuffleGrouping("double")
		return b
	}
	if _, err := Run(make1, 3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if cnt != 100 {
		t.Errorf("count = %d", cnt)
	}
	if want := 2 * (99 * 100 / 2); sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

type doubleBolt struct{}

func (doubleBolt) Prepare(*topology.TaskContext) {}
func (doubleBolt) Cleanup()                      {}
func (doubleBolt) Execute(t topology.Tuple, c topology.Collector) {
	c.Emit(topology.Values{"v": t.Values["v"].(int) * 2})
}

// TestWorkerBoltPanicIsolated: a panicking bolt surfaces in Failures,
// the run still terminates.
func TestWorkerBoltPanicIsolated(t *testing.T) {
	make1 := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 10} }, 1)
		b.SetBolt("sink", func(int) topology.Bolt { return panicky{} }, 1).ShuffleGrouping("src")
		return b
	}
	stats, err := Run(make1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Failures) != 1 {
		t.Errorf("failures = %v", stats.Failures)
	}
	if stats.Executed["sink"] != 10 {
		t.Errorf("executed = %d", stats.Executed["sink"])
	}
}

type panicky struct{}

func (panicky) Prepare(*topology.TaskContext) {}
func (panicky) Cleanup()                      {}
func (panicky) Execute(t topology.Tuple, _ topology.Collector) {
	if t.Values["v"].(int) == 5 {
		panic("poisoned")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	if _, err := NewCoordinator(0); err == nil {
		t.Error("0 workers must fail")
	}
}

// directWireSpout routes each value directly to task v % 3.
type directWireSpout struct{ n, next int }

func (s *directWireSpout) Open(*topology.TaskContext) {}
func (s *directWireSpout) Close()                     {}
func (s *directWireSpout) NextTuple(c topology.Collector) bool {
	if s.next >= s.n {
		return false
	}
	c.EmitDirect(topology.DefaultStream, s.next%3, topology.Values{"v": s.next})
	s.next++
	return true
}

// TestDirectGroupingAcrossWorkers: EmitDirect targets the right task
// even when that task lives on another worker.
func TestDirectGroupingAcrossWorkers(t *testing.T) {
	mu := &sync.Mutex{}
	byTask := make(map[int][]int)
	make1 := func() *topology.Builder {
		b := topology.NewBuilder()
		b.SetSpout("src", func(int) topology.Spout { return &directWireSpout{n: 30} }, 1)
		b.SetBolt("sink", func(task int) topology.Bolt {
			return &directRecorder{mu: mu, byTask: byTask, task: task}
		}, 3).DirectGrouping("src")
		return b
	}
	if _, err := Run(make1, 3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for task := 0; task < 3; task++ {
		if len(byTask[task]) != 10 {
			t.Errorf("task %d received %d, want 10", task, len(byTask[task]))
		}
		for _, v := range byTask[task] {
			if v%3 != task {
				t.Errorf("task %d received v=%d", task, v)
			}
		}
	}
}

type directRecorder struct {
	mu     *sync.Mutex
	byTask map[int][]int
	task   int
}

func (b *directRecorder) Prepare(*topology.TaskContext) {}
func (b *directRecorder) Cleanup()                      {}
func (b *directRecorder) Execute(t topology.Tuple, _ topology.Collector) {
	b.mu.Lock()
	b.byTask[b.task] = append(b.byTask[b.task], t.Values["v"].(int))
	b.mu.Unlock()
}

// TestCoordinatorDetectsDeadWorker: a participant that registers and
// then disappears must fail the run, not hang it.
func TestCoordinatorDetectsDeadWorker(t *testing.T) {
	coord, err := NewCoordinator(2)
	if err != nil {
		t.Fatal(err)
	}
	// One real worker...
	b := topology.NewBuilder()
	b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 5} }, 1)
	b.SetBolt("sink", func(int) topology.Bolt { return panicky{} }, 1).ShuffleGrouping("src")
	w, err := NewWorker(0, 2, b, coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	// ...and one impostor that says hello and vanishes.
	raw, err := net.Dial("tcp", coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw)
	if err := c.send(&envelope{Kind: frameHello, WorkerID: 1, DataAddr: "127.0.0.1:1"}); err != nil {
		t.Fatal(err)
	}
	c.close()
	if _, err := coord.Run(); err == nil {
		t.Error("coordinator must fail when a worker disappears")
	}
	// The surviving worker errors out of its control loop.
	if werr := <-done; werr == nil {
		t.Error("worker should report the lost coordinator")
	}
}

func TestDuplicateWorkerIDRejected(t *testing.T) {
	coord, err := NewCoordinator(2)
	if err != nil {
		t.Fatal(err)
	}
	result := make(chan error, 1)
	go func() {
		_, err := coord.Run()
		result <- err
	}()
	for i := 0; i < 2; i++ {
		raw, err := net.Dial("tcp", coord.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c := newConn(raw)
		if err := c.send(&envelope{Kind: frameHello, WorkerID: 7, DataAddr: "127.0.0.1:1"}); err != nil {
			t.Fatal(err)
		}
		defer c.close()
	}
	if err := <-result; err == nil {
		t.Error("duplicate worker id must fail the run")
	}
}

func TestWorkersAccessor(t *testing.T) {
	p, _ := NewPlacement([]topology.ComponentSpec{{ID: "a", Parallelism: 1}}, 3)
	if p.Workers() != 3 {
		t.Errorf("Workers = %d", p.Workers())
	}
}

func TestExplicitBindAddresses(t *testing.T) {
	coord, err := NewCoordinatorOn("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	mu := &sync.Mutex{}
	sum, cnt := 0, 0
	b := topology.NewBuilder()
	b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 10} }, 1)
	b.SetBolt("sink", func(int) topology.Bolt { return &sumBolt{mu: mu, sum: &sum, cnt: &cnt} }, 1).ShuffleGrouping("src")
	w, err := NewWorker(0, 1, b, coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w.BindAddr = "127.0.0.1:0" // explicit, same semantics
	errs := make(chan error, 1)
	go func() { errs <- w.Run() }()
	if _, err := coord.Run(); err != nil {
		t.Fatal(err)
	}
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if cnt != 10 {
		t.Errorf("cnt = %d", cnt)
	}
}

func TestBadBindAddress(t *testing.T) {
	coord, err := NewCoordinatorOn("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.ln.Close()
	b := topology.NewBuilder()
	b.SetSpout("src", func(int) topology.Spout { return &countSpout{n: 1} }, 1)
	b.SetBolt("sink", func(int) topology.Bolt { return panicky{} }, 1).ShuffleGrouping("src")
	w, err := NewWorker(0, 1, b, coord.Addr())
	if err != nil {
		t.Fatal(err)
	}
	w.BindAddr = "256.0.0.1:99999"
	if err := w.Run(); err == nil {
		t.Error("invalid bind address must fail Run")
	}
}
