package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/datagen"
	"repro/internal/topology"
)

// countWriter counts bytes so benchmarks can report wire density.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// benchEnvelopes builds the Fig. 7-style payload both formats carry in
// a real run: Assigner→Joiner tuples holding interned server-log
// documents plus a window number.
func benchEnvelopes(n int) []*envelope {
	gen := datagen.NewServerLog(59)
	docs := gen.Window(n)
	es := make([]*envelope, n)
	for i, d := range docs {
		es[i] = seqTuple(uint64(i+1), topology.Values{"doc": d, "window": i / 1000})
	}
	return es
}

// benchSender builds a send-only connection of the given format.
func benchSender(format string, w *countWriter) wireConn {
	raw := bufConn{w: w}
	if format == WireGob {
		return newConn(raw)
	}
	return newBinConn(raw, true, false)
}

// BenchmarkWireEncode measures single-tuple encoding on a long-lived
// connection (dictionary in steady state), per format.
func BenchmarkWireEncode(b *testing.B) {
	for _, format := range []string{WireGob, WireBinary} {
		b.Run("format="+format, func(b *testing.B) {
			es := benchEnvelopes(512)
			w := &countWriter{}
			c := benchSender(format, w)
			// Warm the dictionary so the loop measures steady state.
			for _, e := range es {
				if err := c.send(e); err != nil {
					b.Fatal(err)
				}
			}
			w.n = 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.send(es[i%len(es)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(w.n)/float64(b.N), "bytes/tuple")
		})
	}
}

// BenchmarkWireDecode measures single-tuple decoding of a steady-state
// stream, per format.
func BenchmarkWireDecode(b *testing.B) {
	for _, format := range []string{WireGob, WireBinary} {
		b.Run("format="+format, func(b *testing.B) {
			es := benchEnvelopes(512)
			var buf bytes.Buffer
			enc := benchSender(format, &countWriter{})
			switch format {
			case WireGob:
				enc = newConn(bufConn{w: &buf})
			default:
				enc = newBinConn(bufConn{w: &buf}, true, false)
			}
			for _, e := range es {
				if err := enc.send(e); err != nil {
					b.Fatal(err)
				}
			}
			stream := buf.Bytes()
			mkReceiver := func() wireConn {
				r := bufConn{r: bytes.NewReader(stream)}
				if format == WireGob {
					return newConn(r)
				}
				return newBinConn(r, false, false)
			}
			dec := mkReceiver()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%len(es) == 0 && i > 0 {
					// Rewinding the stream (and the per-connection dictionary)
					// is harness bookkeeping, not decode cost.
					b.StopTimer()
					dec = mkReceiver()
					b.StartTimer()
				}
				if _, err := dec.recv(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrameBatch measures the full per-tuple cost of batched
// sends — the shape the peer sender actually uses — across formats and
// batch sizes. bytes/tuple here is the headline wire-density number:
// the binary format amortises the frame header and dictionary over the
// whole batch, gob pays per envelope.
func BenchmarkFrameBatch(b *testing.B) {
	for _, format := range []string{WireGob, WireBinary} {
		for _, batch := range []int{1, 16, 64} {
			b.Run(fmt.Sprintf("format=%s/batch=%d", format, batch), func(b *testing.B) {
				es := benchEnvelopes(512)
				w := &countWriter{}
				c := benchSender(format, w)
				for _, e := range es {
					if err := c.send(e); err != nil {
						b.Fatal(err)
					}
				}
				w.n = 0
				b.ReportAllocs()
				b.ResetTimer()
				sent := 0
				for sent < b.N {
					lo := sent % (len(es) - batch + 1)
					if err := c.sendBatch(es[lo : lo+batch]); err != nil {
						b.Fatal(err)
					}
					sent += batch
				}
				b.StopTimer()
				b.ReportMetric(float64(w.n)/float64(sent), "bytes/tuple")
			})
		}
	}
}
