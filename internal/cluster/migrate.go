package cluster

// Worker-side elastic rescale: spout parking at the window frontier,
// load reporting, live state migration over kind=state frames, and
// peer-link retirement. The safety argument leans on two invariants
// the rest of the runtime already provides: (1) the coordinator only
// broadcasts frameRescale after the pipeline is fully quiescent
// (spouts parked at a frontier, sent == executed twice), so a bolt's
// Snapshotter state is exactly its post-window durable state — the
// same bytes a checkpoint would have written; (2) state chunks ride
// the per-peer resend buffers, so a sever mid-migration replays them
// on the next connection instead of losing half a snapshot.

import (
	"fmt"
	"time"

	"repro/internal/state"
	"repro/internal/telemetry"
	"repro/internal/topology"
)

// taskKey identifies one task instance across migration bookkeeping.
type taskKey struct {
	comp string
	task int
}

// pausePoint is called by every spout loop between NextTuple calls:
// when a pause is requested and the spout sits at a window frontier
// (or has no notion of frontiers), it parks until resumed. Spouts not
// yet at a frontier return immediately and keep pumping — the park
// happens on the first call where the window boundary has been
// reached, so downstream state is exactly post-window when the
// migration snapshots it.
func (w *Worker) pausePoint(s topology.Spout) {
	w.pauseMu.Lock()
	defer w.pauseMu.Unlock()
	if !w.pauseWant {
		return
	}
	f, windowed := s.(topology.Frontiered)
	if windowed && !f.AtFrontier() {
		return
	}
	if windowed && f.Frontier() > w.frontier {
		w.frontier = f.Frontier()
	}
	w.parked++
	w.pauseCond.Broadcast()
	for w.pauseWant && !w.killed.Load() {
		w.pauseCond.Wait()
	}
	w.parked--
}

// requestPause asks every live spout to park at its next frontier and
// blocks until they all have (exhausted spouts count as parked). It
// returns the highest frontier window a parked spout reported.
func (w *Worker) requestPause() int {
	w.pauseMu.Lock()
	defer w.pauseMu.Unlock()
	w.pauseWant = true
	for int64(w.parked) < w.spoutsLeft.Load() && !w.killed.Load() {
		w.pauseCond.Wait()
	}
	return w.frontier
}

// resumeSpouts unparks every spout blocked in pausePoint.
func (w *Worker) resumeSpouts() {
	w.pauseMu.Lock()
	w.pauseWant = false
	w.pauseCond.Broadcast()
	w.pauseMu.Unlock()
}

// taskLoads reports every locally hosted task with its cumulative
// execution count — the live signal the coordinator's planner uses to
// move the fewest, hottest tasks. Spout tasks are pinned (their read
// position cannot be streamed), so they report Movable false.
func (w *Worker) taskLoads() []TaskLoad {
	pl := w.placement.Load()
	var out []TaskLoad
	for _, comp := range w.spec {
		movable := w.builder.SpoutFactory(comp.ID) == nil
		for _, task := range pl.TasksOn(comp.ID, w.id) {
			var load int64
			if counters := w.taskExec[comp.ID]; task < len(counters) {
				load = counters[task].Load()
			}
			out = append(out, TaskLoad{Comp: comp.ID, Task: task, Worker: w.id, Load: load, Movable: movable})
		}
	}
	return out
}

// handleRescale executes one worker's share of a rescale. It runs on
// its own goroutine so the control loop keeps answering heartbeats
// and aborts while snapshots stream.
func (w *Worker) handleRescale(coord *conn, e *envelope) {
	cur := w.placement.Load()
	next, err := cur.Apply(e.Epoch, e.Workers, e.Moves)
	if err != nil {
		// The coordinator computed the moves from the same table this
		// worker routes by, so this cannot happen unless the cluster's
		// state already forked; record it loudly but still answer, so
		// the protocol fails at the coordinator rather than hanging.
		w.recordFailure("rescale", int(e.Epoch), err)
		_ = coord.send(&envelope{Kind: frameRescaleReady, WorkerID: w.id})
		return
	}
	// Fresh address book first — outbound migrations may target workers
	// this worker has never dialled — then the epoch swap. The routing
	// hot path reads the new table with its usual single atomic load.
	addrs := make(map[int]string, len(e.Addresses))
	for id, a := range e.Addresses {
		addrs[id] = a
	}
	w.addrs.Store(&addrs)
	w.placement.Store(next)

	var expect []taskKey
	for _, m := range e.Moves {
		switch {
		case m.From == w.id:
			if err := w.migrateOut(m, e.Epoch, e.Window); err != nil {
				w.recordFailure(m.Comp, m.Task, err)
			}
		case m.To == w.id:
			expect = append(expect, taskKey{m.Comp, m.Task})
		}
	}

	// Wait for every inbound task to be streamed in and installed.
	w.migMu.Lock()
	for !w.killed.Load() {
		ready := true
		for _, k := range expect {
			if !w.installed[k] {
				ready = false
				break
			}
		}
		if ready {
			break
		}
		w.migCond.Wait()
	}
	for _, k := range expect {
		delete(w.installed, k)
	}
	w.migMu.Unlock()

	// Drain the resend buffers: every streamed chunk (and any straggler
	// tuple frame) must be acknowledged before the coordinator may
	// retire links — a departing worker's buffers must be empty when it
	// exits, and a survivor must not still owe a departing peer frames.
	for !w.killed.Load() && w.UnackedFrames() > 0 {
		time.Sleep(time.Millisecond)
	}
	_ = coord.send(&envelope{Kind: frameRescaleReady, WorkerID: w.id})
}

// migrateOut stops one local task, snapshots it, and streams the
// snapshot to its new home in sequenced kind=state chunks. The bolt
// loop exits without Cleanup — the operator is not shutting down, it
// is moving — and Recover is never replayed on the receiving side.
func (w *Worker) migrateOut(m Move, epoch uint64, window int) error {
	w.tasksMu.Lock()
	var h *taskHandle
	if hs := w.tasks[m.Comp]; m.Task >= 0 && m.Task < len(hs) {
		h = hs[m.Task]
	}
	if h == nil {
		w.tasksMu.Unlock()
		return fmt.Errorf("cluster: move %s: task not hosted here", m)
	}
	w.tasks[m.Comp][m.Task] = nil
	w.boxes[m.Comp][m.Task].Store(nil)
	w.tasksMu.Unlock()

	h.moved.Store(true)
	h.box.close()
	<-h.done // the loop drains any buffered tuples, then exits sans Cleanup

	var env []byte
	if s, ok := h.bolt.(state.Snapshotter); ok {
		var err error
		if env, err = state.Encode(m.Comp, s); err != nil {
			return err
		}
	}
	off := 0
	for {
		end := off + migrationChunk
		if end > len(env) {
			end = len(env)
		}
		last := end == len(env)
		err := w.sendToPeer(m.To, &envelope{
			Kind: frameState, TargetComp: m.Comp, TargetTask: m.Task,
			Epoch: epoch, Window: window, StateData: env[off:end], StateLast: last,
		})
		if err != nil {
			return err
		}
		if last {
			break
		}
		off = end
	}
	w.tel.migOut.Inc()
	w.tel.migOutBytes.Add(int64(len(env)))
	return nil
}

// acceptStateChunk assembles inbound kind=state chunks (called from
// the read loop under the sender's dedup cursor, so replayed chunks
// never reach it twice) and installs the task when the last chunk
// lands.
func (w *Worker) acceptStateChunk(e *envelope) {
	k := taskKey{e.TargetComp, e.TargetTask}
	w.migMu.Lock()
	buf := append(w.migIn[k], e.StateData...)
	if !e.StateLast {
		w.migIn[k] = buf
		w.migMu.Unlock()
		return
	}
	delete(w.migIn, k)
	w.migMu.Unlock()

	w.installTask(e.TargetComp, e.TargetTask, buf)
	w.tel.migIn.Inc()
	w.tel.migInBytes.Add(int64(len(buf)))

	w.migMu.Lock()
	w.installed[k] = true
	w.migCond.Broadcast()
	w.migMu.Unlock()
}

// installTask builds a fresh bolt instance for a migrated task,
// installs its mailbox, and starts its loop with the streamed
// snapshot as restore payload. A non-nil (possibly empty) payload
// marks the migration path: Prepare runs, Restore replaces Recover —
// nothing crashed, so re-emitting recovery state would duplicate it.
func (w *Worker) installTask(comp string, task int, snapshot []byte) {
	spec, ok := w.specByID[comp]
	bf := w.builder.BoltFactory(comp)
	if !ok || bf == nil || task < 0 || task >= spec.Parallelism {
		w.recordFailure(comp, task, "migration for unknown task")
		return
	}
	if snapshot == nil {
		snapshot = []byte{}
	}
	parallelism := make(map[string]int, len(w.spec))
	for _, c := range w.spec {
		parallelism[c.ID] = c.Parallelism
	}
	if !w.startBolt(spec, task, bf(task), parallelism, snapshot) {
		w.recordFailure(comp, task, "migration raced shutdown")
	}
}

// retirePeers tears down the outbound links, receive-side cursors,
// address-book entries and telemetry series of departed workers —
// the per-peer series would otherwise linger forever (the leak the
// elastic-rescale issue calls out).
func (w *Worker) retirePeers(departed []int) {
	if len(departed) == 0 {
		return
	}
	cur := *w.addrs.Load()
	addrs := make(map[int]string, len(cur))
	for id, a := range cur {
		addrs[id] = a
	}
	for _, id := range departed {
		delete(addrs, id)
	}
	w.addrs.Store(&addrs)

	w.peersMu.Lock()
	for _, id := range departed {
		if p := w.peers[id]; p != nil {
			p.mu.Lock()
			p.closed = true
			if p.c != nil {
				p.c.close()
				p.c = nil
			}
			p.notFull.Broadcast()
			p.work.Broadcast()
			p.mu.Unlock()
			delete(w.peers, id)
		}
	}
	w.peersMu.Unlock()

	w.inboundMu.Lock()
	for _, id := range departed {
		delete(w.inbound, id)
	}
	w.inboundMu.Unlock()

	if reg := w.Telemetry; reg != nil {
		id := fmt.Sprint(w.id)
		names := make([]string, 0, len(departed))
		for _, d := range departed {
			names = append(names, telemetry.Name("cluster_peer_backoff_seconds", "worker", id, "peer", fmt.Sprint(d)))
		}
		reg.Drop(names...)
	}
}

// dropOwnPeerSeries retires a departing worker's own per-peer gauges
// before it exits; its peers drop their mirror series in retirePeers.
func (w *Worker) dropOwnPeerSeries() {
	reg := w.Telemetry
	if reg == nil {
		return
	}
	id := fmt.Sprint(w.id)
	w.peersMu.Lock()
	names := make([]string, 0, len(w.peers))
	for pid := range w.peers {
		names = append(names, telemetry.Name("cluster_peer_backoff_seconds", "worker", id, "peer", fmt.Sprint(pid)))
	}
	w.peersMu.Unlock()
	reg.Drop(names...)
}
