package document

import (
	"bytes"
	"encoding/gob"
)

// gobDocument is the wire form of a Document: gob needs exported
// fields, while the in-memory form keeps its pairs private to preserve
// the sorted-unique invariant.
type gobDocument struct {
	ID    uint64
	Pairs []Pair
}

// GobEncode implements gob.GobEncoder, making documents transferable
// across the TCP cluster transport.
func (d Document) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(gobDocument{ID: d.ID, Pairs: d.pairs})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder. The pairs arrive already sorted
// and unique (they were produced by New); New is applied anyway so a
// corrupted or hand-crafted payload cannot break the invariant.
func (d *Document) GobDecode(data []byte) error {
	var g gobDocument
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return err
	}
	*d = New(g.ID, g.Pairs)
	return nil
}
