package document

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGobRoundTrip(t *testing.T) {
	d := MustParse(42, `{"User":"A","MsgId":2,"ok":true,"r":0.5,"n":null,"arr":[1,2]}`)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatal(err)
	}
	var back Document
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.ID != 42 || !back.Equal(d) {
		t.Errorf("round trip changed document: %v -> %v", d, back)
	}
}

func TestGobDecodeGarbage(t *testing.T) {
	var d Document
	if err := d.GobDecode([]byte("not gob")); err == nil {
		t.Error("garbage must fail to decode")
	}
}

func TestQuickGobRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := randomDoc(rr, uint64(rr.Intn(1000)))
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(d); err != nil {
			return false
		}
		var back Document
		if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
			return false
		}
		return back.Equal(d) && back.ID == d.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLookupDecodesValues(t *testing.T) {
	d := MustParse(1, `{"s":"hello","i":42,"b":true,"z":null}`)
	cases := map[string]string{"s": "hello", "i": "42", "b": "true", "z": "null"}
	for attr, want := range cases {
		got, ok := d.Lookup(attr)
		if !ok || got != want {
			t.Errorf("Lookup(%s) = %q,%v; want %q", attr, got, ok, want)
		}
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("Lookup(missing) reported present")
	}
}

func TestEncodeValueVariants(t *testing.T) {
	cases := map[any]string{
		"x":           EncodeString("x"),
		42:            EncodeInt(42),
		int64(7):      EncodeInt(7),
		3.25:          EncodeFloat(3.25),
		true:          EncodeBool(true),
		false:         EncodeBool(false),
		nil:           EncodeNull(),
		complex(1, 2): EncodeString("(1+2i)"), // fallback path
	}
	for in, want := range cases {
		if got := EncodeValue(in); got != want {
			t.Errorf("EncodeValue(%v) = %q, want %q", in, got, want)
		}
	}
	// Integral floats canonicalise to ints.
	if EncodeFloat(2.0) != EncodeInt(2) {
		t.Error("2.0 must encode as integer 2")
	}
}

func TestDecodeValueStringVariants(t *testing.T) {
	cases := map[string]string{
		EncodeString("x"):      "x",
		EncodeInt(5):           "5",
		EncodeFloat(2.5):       "2.5",
		EncodeBool(true):       "true",
		EncodeNull():           "null",
		EncodeArrayJSON(`[1]`): "[1]",
		"":                     "",
		"?weird":               "?weird", // unknown tag falls through
	}
	for in, want := range cases {
		if got := DecodeValueString(in); got != want {
			t.Errorf("DecodeValueString(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValueJSONFallbacks(t *testing.T) {
	if ValueJSON("") != `""` {
		t.Error("empty encoding must render as empty string literal")
	}
	if ValueJSON("?odd") != `"?odd"` {
		t.Error("unknown tag must be quoted")
	}
}

func TestPairFromKeyPanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("malformed key must panic")
		}
	}()
	PairFromKey("no separator here")
}
