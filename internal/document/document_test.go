package document

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func pairsOf(kv ...string) []Pair {
	if len(kv)%2 != 0 {
		panic("pairsOf: odd arguments")
	}
	var ps []Pair
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, Pair{Attr: kv[i], Val: EncodeString(kv[i+1])})
	}
	return ps
}

func TestNewSortsAndDeduplicates(t *testing.T) {
	d := New(1, []Pair{
		{Attr: "b", Val: EncodeString("x")},
		{Attr: "a", Val: EncodeString("y")},
		{Attr: "b", Val: EncodeString("z")}, // later value wins
	})
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if v, ok := d.Get("b"); !ok || v != EncodeString("z") {
		t.Errorf("Get(b) = %q,%v; want z", v, ok)
	}
	ps := d.Pairs()
	if ps[0].Attr != "a" || ps[1].Attr != "b" {
		t.Errorf("pairs not sorted: %v", ps)
	}
}

func TestGetAbsent(t *testing.T) {
	d := New(1, pairsOf("a", "1"))
	if _, ok := d.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
	if d.Has(Pair{Attr: "a", Val: EncodeString("2")}) {
		t.Error("Has matched wrong value")
	}
	if !d.HasAttr("a") || d.HasAttr("zz") {
		t.Error("HasAttr wrong")
	}
}

// TestPaperFigure1 reproduces the joinability relationships between the
// documents of the paper's Fig. 1.
func TestPaperFigure1(t *testing.T) {
	d1 := MustParse(1, `{"User":"A","Severity":"Warning"}`)
	d2 := MustParse(2, `{"User":"A","Severity":"Warning","MsgId":2}`)
	d3 := MustParse(3, `{"User":"A","Severity":"Error"}`)
	d4 := MustParse(4, `{"IP":"10.2.145.212","Severity":"Warning"}`)
	d5 := MustParse(5, `{"User":"B","Severity":"Critical","MsgId":1}`)
	d6 := MustParse(6, `{"User":"B","Severity":"Critical"}`)
	d7 := MustParse(7, `{"User":"B","Severity":"Warning"}`)

	cases := []struct {
		a, b Document
		want bool
	}{
		{d1, d2, true},  // identical shared pairs, d2 adds MsgId
		{d1, d3, false}, // Severity conflicts (Warning vs Error)
		{d1, d4, true},  // share Severity:Warning, no conflicts
		{d1, d7, false}, // User conflicts
		{d5, d6, true},  // share User:B and Severity:Critical
		{d5, d7, false}, // Severity conflicts
		{d6, d7, false}, // Severity conflicts
		{d4, d7, true},  // share Severity:Warning
		{d2, d5, false}, // MsgId and User conflict
	}
	for _, c := range cases {
		if got := Joinable(c.a, c.b); got != c.want {
			t.Errorf("Joinable(d%d, d%d) = %v, want %v", c.a.ID, c.b.ID, got, c.want)
		}
	}
}

func TestClassifyDisjoint(t *testing.T) {
	a := New(1, pairsOf("x", "1"))
	b := New(2, pairsOf("y", "1"))
	r, n := Classify(a, b)
	if r != RelDisjoint || n != 0 {
		t.Errorf("Classify = %v,%d; want Disjoint,0", r, n)
	}
	if Joinable(a, b) {
		t.Error("documents sharing no attribute must not join")
	}
}

func TestSharedPairs(t *testing.T) {
	a := New(1, pairsOf("a", "1", "b", "2", "c", "3"))
	b := New(2, pairsOf("a", "1", "b", "2", "d", "9"))
	if n := SharedPairs(a, b); n != 2 {
		t.Errorf("SharedPairs = %d, want 2", n)
	}
	c := New(3, pairsOf("a", "1", "b", "X"))
	if n := SharedPairs(a, c); n != -1 {
		t.Errorf("SharedPairs conflicting = %d, want -1", n)
	}
}

func TestMerge(t *testing.T) {
	a := New(1, pairsOf("a", "1", "b", "2"))
	b := New(2, pairsOf("b", "2", "c", "3"))
	m := Merge(99, a, b)
	want := New(99, pairsOf("a", "1", "b", "2", "c", "3"))
	if !m.Equal(want) {
		t.Errorf("Merge = %v, want %v", m, want)
	}
	if m.ID != 99 {
		t.Errorf("Merge id = %d", m.ID)
	}
}

func TestMergePanicsOnConflict(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge on conflicting docs did not panic")
		}
	}()
	Merge(0, New(1, pairsOf("a", "1")), New(2, pairsOf("a", "2")))
}

func TestPairKeyRoundTrip(t *testing.T) {
	ps := []Pair{
		{Attr: "a", Val: EncodeString("x:y=z")},
		{Attr: "weird.attr", Val: EncodeInt(42)},
		{Attr: "b", Val: EncodeNull()},
	}
	for _, p := range ps {
		if got := PairFromKey(p.Key()); got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

// randomDoc builds a random document over a small attribute/value
// universe so collisions (shared and conflicting pairs) are common.
func randomDoc(r *rand.Rand, id uint64) Document {
	attrs := []string{"a", "b", "c", "d", "e", "f"}
	n := 1 + r.Intn(5)
	var ps []Pair
	perm := r.Perm(len(attrs))
	for i := 0; i < n; i++ {
		ps = append(ps, Pair{Attr: attrs[perm[i]], Val: EncodeInt(int64(r.Intn(3)))})
	}
	return New(id, ps)
}

// naiveJoinable is an intentionally simple reference implementation.
func naiveJoinable(a, b Document) bool {
	shared := false
	for _, pa := range a.Pairs() {
		if v, ok := b.Get(pa.Attr); ok {
			if v != pa.Val {
				return false
			}
			shared = true
		}
	}
	return shared
}

func TestQuickJoinableMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomDoc(rr, 1)
		b := randomDoc(rr, 2)
		return Joinable(a, b) == naiveJoinable(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: r}); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinableSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomDoc(rr, 1)
		b := randomDoc(rr, 2)
		return Joinable(a, b) == Joinable(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelfJoinable(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := randomDoc(rr, 1)
		return Joinable(d, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMergeJoinableWithBoth(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		a := randomDoc(rr, 1)
		b := randomDoc(rr, 2)
		if !Joinable(a, b) {
			return true
		}
		m := Merge(3, a, b)
		// The merged document must be joinable with both inputs and
		// contain every input pair.
		if !Joinable(m, a) || !Joinable(m, b) {
			return false
		}
		for _, p := range a.Pairs() {
			if !m.Has(p) {
				return false
			}
		}
		for _, p := range b.Pairs() {
			if !m.Has(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAttrStatsOrderPaperTableI(t *testing.T) {
	// Table I: d1{a:3,b:7,c:1} d2{a:3,b:8} d3{a:3,b:7} d4{b:8,c:2}
	docs := []Document{
		New(1, []Pair{{Attr: "a", Val: EncodeInt(3)}, {Attr: "b", Val: EncodeInt(7)}, {Attr: "c", Val: EncodeInt(1)}}),
		New(2, []Pair{{Attr: "a", Val: EncodeInt(3)}, {Attr: "b", Val: EncodeInt(8)}}),
		New(3, []Pair{{Attr: "a", Val: EncodeInt(3)}, {Attr: "b", Val: EncodeInt(7)}}),
		New(4, []Pair{{Attr: "b", Val: EncodeInt(8)}, {Attr: "c", Val: EncodeInt(2)}}),
	}
	s := CollectAttrStats(docs)
	want := []string{"b", "a", "c"}
	if got := s.Order(); !reflect.DeepEqual(got, want) {
		t.Errorf("Order = %v, want %v (paper Table I)", got, want)
	}
	if ub := s.Ubiquitous(); !reflect.DeepEqual(ub, []string{"b"}) {
		t.Errorf("Ubiquitous = %v, want [b]", ub)
	}
}

func TestAttrStatsTieBreakByDistinct(t *testing.T) {
	// x and y both appear in 2 docs; x has 1 distinct value, y has 2,
	// so x precedes y.
	docs := []Document{
		New(1, pairsOf("x", "same", "y", "v1")),
		New(2, pairsOf("x", "same", "y", "v2")),
	}
	s := CollectAttrStats(docs)
	if got := s.Order(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Errorf("Order = %v, want [x y]", got)
	}
}

func TestDocumentStringer(t *testing.T) {
	d := New(5, pairsOf("a", "1"))
	if s := d.String(); s != "d5{a:1}" {
		t.Errorf("String = %q", s)
	}
}

func TestRelationTotality(t *testing.T) {
	// Sanity: sort order of pairs inside Classify must not matter.
	a := New(1, pairsOf("z", "1", "a", "1"))
	b := New(2, pairsOf("a", "1", "z", "1", "m", "2"))
	r, n := Classify(a, b)
	if r != RelJoinable || n != 2 {
		t.Errorf("Classify = %v,%d; want Joinable,2", r, n)
	}
}

func sortedAttrs(d Document) []string {
	var out []string
	for _, p := range d.Pairs() {
		out = append(out, p.Attr)
	}
	sort.Strings(out)
	return out
}

func TestQuickPairsSortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		d := randomDoc(rr, 1)
		attrs := sortedAttrs(d)
		for i := 1; i < len(attrs); i++ {
			if attrs[i] == attrs[i-1] {
				return false
			}
		}
		return sort.StringsAreSorted(attrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
