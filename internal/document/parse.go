package document

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Parse decodes a single JSON object into a Document with the given id.
//
// Nested objects are flattened into dotted attribute paths
// ("nested_obj.str"), matching the flat attribute-value pair model the
// paper assumes; arrays are kept as one opaque canonical value so that
// join equality applies to the array as a whole.
func Parse(id uint64, data []byte) (Document, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		return Document{}, fmt.Errorf("document: parse: %w", err)
	}
	pairs := make([]Pair, 0, len(raw))
	pairs = flattenObject("", raw, pairs)
	return New(id, pairs), nil
}

// MustParse is Parse for trusted literals in tests and examples.
func MustParse(id uint64, data string) Document {
	d, err := Parse(id, []byte(data))
	if err != nil {
		panic(err)
	}
	return d
}

func flattenObject(prefix string, obj map[string]any, pairs []Pair) []Pair {
	for k, v := range obj {
		attr := k
		if prefix != "" {
			attr = prefix + "." + k
		}
		pairs = flattenValue(attr, v, pairs)
	}
	return pairs
}

func flattenValue(attr string, v any, pairs []Pair) []Pair {
	switch x := v.(type) {
	case map[string]any:
		return flattenObject(attr, x, pairs)
	case []any:
		return append(pairs, Pair{Attr: attr, Val: EncodeArrayJSON(compactJSON(x))})
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return append(pairs, Pair{Attr: attr, Val: EncodeInt(i)})
		}
		if f, err := x.Float64(); err == nil {
			return append(pairs, Pair{Attr: attr, Val: EncodeFloat(f)})
		}
		// The literal does not fit a float64 (e.g. 1e999): keep the
		// raw number text so equality and JSON round-trips still work.
		return append(pairs, Pair{Attr: attr, Val: "n" + x.String()})
	default:
		return append(pairs, Pair{Attr: attr, Val: EncodeValue(v)})
	}
}

// compactJSON serialises a decoded JSON value deterministically:
// encoding/json already sorts map keys, so equal arrays always produce
// equal strings.
func compactJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprint(v)
	}
	return string(b)
}

// MarshalJSON renders the document back into a flat JSON object. Dotted
// attribute paths stay flat; this is a display format, not an inverse
// of Parse.
func (d Document) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range d.pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		key, err := json.Marshal(p.Attr)
		if err != nil {
			return nil, err
		}
		b.Write(key)
		b.WriteByte(':')
		b.WriteString(ValueJSON(p.Val))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// ParseStream decodes a stream of newline- or whitespace-separated JSON
// objects, assigning ids sequentially starting at firstID.
func ParseStream(firstID uint64, data []byte) ([]Document, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var docs []Document
	id := firstID
	for dec.More() {
		var raw map[string]any
		if err := dec.Decode(&raw); err != nil {
			return docs, fmt.Errorf("document: parse stream at doc %d: %w", id, err)
		}
		pairs := flattenObject("", raw, nil)
		docs = append(docs, New(id, pairs))
		id++
	}
	return docs, nil
}

// AttrStats summarises how attributes occur across a document batch:
// in how many documents each attribute appears, and how many distinct
// values it carries. Both drive the FP-tree global ordering and the
// attribute-expansion heuristics.
type AttrStats struct {
	DocCount  map[string]int
	Distinct  map[string]int
	TotalDocs int

	values map[string]map[string]struct{}
}

// CollectAttrStats scans a batch of documents.
func CollectAttrStats(docs []Document) *AttrStats {
	s := &AttrStats{
		DocCount:  make(map[string]int),
		Distinct:  make(map[string]int),
		TotalDocs: len(docs),
		values:    make(map[string]map[string]struct{}),
	}
	for _, d := range docs {
		for _, p := range d.Pairs() {
			s.DocCount[p.Attr]++
			vs := s.values[p.Attr]
			if vs == nil {
				vs = make(map[string]struct{})
				s.values[p.Attr] = vs
			}
			vs[p.Val] = struct{}{}
		}
	}
	for a, vs := range s.values {
		s.Distinct[a] = len(vs)
	}
	return s
}

// Ubiquitous returns the attributes present in every document of the
// batch, sorted by the global ordering (see Order).
func (s *AttrStats) Ubiquitous() []string {
	var out []string
	for a, c := range s.DocCount {
		if c == s.TotalDocs && s.TotalDocs > 0 {
			out = append(out, a)
		}
	}
	s.sortByOrder(out)
	return out
}

// Order returns all attributes in the paper's fixed global ordering:
// descending document frequency, ties broken by ascending number of
// distinct values, final tie broken lexicographically for determinism.
func (s *AttrStats) Order() []string {
	out := make([]string, 0, len(s.DocCount))
	for a := range s.DocCount {
		out = append(out, a)
	}
	s.sortByOrder(out)
	return out
}

func (s *AttrStats) sortByOrder(attrs []string) {
	sort.Slice(attrs, func(i, j int) bool {
		ai, aj := attrs[i], attrs[j]
		if s.DocCount[ai] != s.DocCount[aj] {
			return s.DocCount[ai] > s.DocCount[aj]
		}
		if s.Distinct[ai] != s.Distinct[aj] {
			return s.Distinct[ai] < s.Distinct[aj]
		}
		return ai < aj
	})
}
