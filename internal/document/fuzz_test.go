package document

import (
	"encoding/json"
	"testing"

	"repro/internal/symbol"
)

// FuzzParse exercises the JSON-to-document decoder: it must never
// panic, and every successfully parsed document must round-trip
// through MarshalJSON into an equal document (join semantics survive
// serialisation).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{"User":"A","Severity":"Warning"}`,
		`{"a":1,"b":2.5,"c":true,"d":null}`,
		`{"nested":{"x":{"y":1}},"arr":[1,"two",null]}`,
		`{"":""}`,
		`{"dup":1,"dup":2}`,
		`{"n":1e308,"m":-0.0,"big":9223372036854775807}`,
		`{"u":"é世界"}`,
		`{}`,
		`{"a":[[[]]]}`,
		`{"huge":1e999}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Parse(1, data)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		out, err := d.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of parsed doc failed: %v", err)
		}
		if !json.Valid(out) {
			t.Fatalf("marshal produced invalid JSON: %s", out)
		}
		back, err := Parse(2, out)
		if err != nil {
			t.Fatalf("re-parse failed: %v (json: %s)", err, out)
		}
		if !d.Equal(back) {
			t.Fatalf("round trip changed document:\n  in:  %v\n  out: %v", d, back)
		}
	})
}

// FuzzClassify checks the join-classification kernel for panics and
// symmetry on arbitrary attribute/value material.
func FuzzClassify(f *testing.F) {
	f.Add("a", "1", "b", "2")
	f.Add("x", "", "", "y")
	f.Add("same", "v", "same", "v")
	f.Fuzz(func(t *testing.T, a1, v1, a2, v2 string) {
		d1 := New(1, []Pair{{Attr: a1, Val: EncodeString(v1)}, {Attr: a2, Val: EncodeString(v2)}})
		d2 := New(2, []Pair{{Attr: a2, Val: EncodeString(v1)}, {Attr: a1, Val: EncodeString(v2)}})
		r12, n12 := Classify(d1, d2)
		r21, n21 := Classify(d2, d1)
		if r12 != r21 || n12 != n21 {
			t.Fatalf("classification asymmetric: %v/%d vs %v/%d", r12, n12, r21, n21)
		}
		if Joinable(d1, d2) {
			// Merge must not panic for joinable pairs.
			Merge(3, d1, d2)
		}
	})
}

// stripSyms returns a copy of d without its interned symbols, forcing
// Classify/Merge onto the string path.
func stripSyms(d Document) Document {
	return Document{ID: d.ID, pairs: d.pairs}
}

// FuzzInternedParity asserts that the symbol fast paths of Classify and
// Merge agree exactly with the string-path implementations on arbitrary
// documents: same relation, same shared count, and identical merged
// output with well-formed symbols.
func FuzzInternedParity(f *testing.F) {
	f.Add("a", "1", "b", "2", "c", "3", byte(0))
	f.Add("a", "1", "a", "2", "a", "3", byte(3))
	f.Add("x", "", "", "y", "x", "", byte(7))
	f.Add("same", "v", "same", "v", "same", "v", byte(1))
	f.Fuzz(func(t *testing.T, a1, v1, a2, v2, a3, v3 string, mix byte) {
		d1 := New(1, []Pair{{Attr: a1, Val: EncodeString(v1)}, {Attr: a2, Val: EncodeString(v2)}})
		p2 := []Pair{{Attr: a3, Val: EncodeString(v3)}}
		if mix&1 != 0 {
			p2 = append(p2, Pair{Attr: a2, Val: EncodeString(v2)}) // shared pair
		}
		if mix&2 != 0 {
			p2 = append(p2, Pair{Attr: a1, Val: EncodeString(v3)}) // potential conflict
		}
		d2 := New(2, p2)

		rI, nI := Classify(d1, d2)
		rS, nS := Classify(stripSyms(d1), stripSyms(d2))
		if rI != rS || nI != nS {
			t.Fatalf("interned Classify = %v/%d, string Classify = %v/%d\n  d1: %v\n  d2: %v",
				rI, nI, rS, nS, d1, d2)
		}
		// Mixed paths (one side carrying symbols) must agree too.
		if rM, nM := Classify(d1, stripSyms(d2)); rM != rS || nM != nS {
			t.Fatalf("mixed Classify = %v/%d, string Classify = %v/%d", rM, nM, rS, nS)
		}

		if rI != RelConflicting {
			mI := Merge(3, d1, d2)
			mS := Merge(3, stripSyms(d1), stripSyms(d2))
			if !mI.Equal(mS) || mI.ID != mS.ID {
				t.Fatalf("interned Merge = %v, string Merge = %v", mI, mS)
			}
			// The fast-path output's symbols must stay parallel to its
			// pairs under the epoch it claims.
			syms, epoch := mI.Syms()
			if syms != nil && epoch == symbol.Epoch() {
				for i, p := range mI.Pairs() {
					if want := symbol.InternPair(p.Attr, p.Val); syms[i] != want {
						t.Fatalf("merged symbol %d = %v, want %v (pair %v)", i, syms[i], want, p)
					}
				}
			}
		}
	})
}
