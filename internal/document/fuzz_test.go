package document

import (
	"encoding/json"
	"testing"
)

// FuzzParse exercises the JSON-to-document decoder: it must never
// panic, and every successfully parsed document must round-trip
// through MarshalJSON into an equal document (join semantics survive
// serialisation).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`{"User":"A","Severity":"Warning"}`,
		`{"a":1,"b":2.5,"c":true,"d":null}`,
		`{"nested":{"x":{"y":1}},"arr":[1,"two",null]}`,
		`{"":""}`,
		`{"dup":1,"dup":2}`,
		`{"n":1e308,"m":-0.0,"big":9223372036854775807}`,
		`{"u":"é世界"}`,
		`{}`,
		`{"a":[[[]]]}`,
		`{"huge":1e999}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Parse(1, data)
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		out, err := d.MarshalJSON()
		if err != nil {
			t.Fatalf("marshal of parsed doc failed: %v", err)
		}
		if !json.Valid(out) {
			t.Fatalf("marshal produced invalid JSON: %s", out)
		}
		back, err := Parse(2, out)
		if err != nil {
			t.Fatalf("re-parse failed: %v (json: %s)", err, out)
		}
		if !d.Equal(back) {
			t.Fatalf("round trip changed document:\n  in:  %v\n  out: %v", d, back)
		}
	})
}

// FuzzClassify checks the join-classification kernel for panics and
// symmetry on arbitrary attribute/value material.
func FuzzClassify(f *testing.F) {
	f.Add("a", "1", "b", "2")
	f.Add("x", "", "", "y")
	f.Add("same", "v", "same", "v")
	f.Fuzz(func(t *testing.T, a1, v1, a2, v2 string) {
		d1 := New(1, []Pair{{Attr: a1, Val: EncodeString(v1)}, {Attr: a2, Val: EncodeString(v2)}})
		d2 := New(2, []Pair{{Attr: a2, Val: EncodeString(v1)}, {Attr: a1, Val: EncodeString(v2)}})
		r12, n12 := Classify(d1, d2)
		r21, n21 := Classify(d2, d1)
		if r12 != r21 || n12 != n21 {
			t.Fatalf("classification asymmetric: %v/%d vs %v/%d", r12, n12, r21, n21)
		}
		if Joinable(d1, d2) {
			// Merge must not panic for joinable pairs.
			Merge(3, d1, d2)
		}
	})
}
