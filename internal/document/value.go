package document

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Canonical value encoding.
//
// Natural-join equality must hold across documents regardless of how a
// JSON value was spelled, so values are stored as canonical strings
// with a one-byte type tag:
//
//	s<str>   JSON string
//	n<num>   JSON number, shortest round-trip float formatting
//	i<int>   JSON number that is an exact integer (canonicalised so
//	         that 2 and 2.0 compare equal)
//	btrue / bfalse  JSON booleans
//	z        JSON null
//	j<json>  compact serialisation of a JSON array (arrays are treated
//	         as one opaque value; nested objects are flattened into
//	         dotted attribute paths instead, see Flatten)
//
// Encoding equality therefore coincides with JSON value equality for
// all scalar types the paper's documents use.

// EncodeString encodes a JSON string value.
func EncodeString(s string) string { return "s" + s }

// EncodeBool encodes a JSON boolean value.
func EncodeBool(b bool) string {
	if b {
		return "btrue"
	}
	return "bfalse"
}

// EncodeNull encodes JSON null.
func EncodeNull() string { return "z" }

// EncodeInt encodes an integral JSON number.
func EncodeInt(v int64) string { return "i" + strconv.FormatInt(v, 10) }

// EncodeFloat encodes a JSON number, canonicalising exact integers so
// that 2 and 2.0 encode identically. The int64 range check guards the
// float-to-int conversion, which the Go spec leaves implementation-
// defined for out-of-range values.
func EncodeFloat(f float64) string {
	if f >= math.MinInt64 && f <= math.MaxInt64 && f == math.Trunc(f) {
		return EncodeInt(int64(f))
	}
	if math.IsInf(f, 0) || math.IsNaN(f) {
		// JSON has no literal for these; encode as tagged strings so
		// serialisation stays valid while equality still works.
		return EncodeString(strconv.FormatFloat(f, 'g', -1, 64))
	}
	return "n" + strconv.FormatFloat(f, 'g', -1, 64)
}

// EncodeArrayJSON wraps an already-serialised compact JSON array.
func EncodeArrayJSON(compact string) string { return "j" + compact }

// EncodeValue encodes the result of encoding/json decoding (string,
// float64, bool, nil, int variants) into canonical form. Unsupported
// dynamic types fall back to their fmt representation tagged as a
// string, which keeps the encoding total.
func EncodeValue(v any) string {
	switch x := v.(type) {
	case string:
		return EncodeString(x)
	case float64:
		return EncodeFloat(x)
	case int:
		return EncodeInt(int64(x))
	case int64:
		return EncodeInt(x)
	case bool:
		return EncodeBool(x)
	case nil:
		return EncodeNull()
	default:
		return EncodeString(fmt.Sprint(x))
	}
}

// EncodeJSONValue canonicalises one decoded JSON value exactly as
// document parsing would: json.Number literals become integer or float
// encodings (so a filter spelled 2 matches a document attribute parsed
// from 2.0), arrays serialise as opaque JSON, and scalars take their
// canonical tag. Nested objects are rejected — parsing flattens them
// into multiple dotted attributes, so they cannot be a single pair
// value; callers should flatten the filter path instead ("a.b": 1).
func EncodeJSONValue(v any) (string, error) {
	switch x := v.(type) {
	case map[string]any:
		return "", fmt.Errorf("document: a nested object is not a single value; use a flattened attribute path")
	case []any:
		return EncodeArrayJSON(compactJSON(x)), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return EncodeInt(i), nil
		}
		if f, err := x.Float64(); err == nil {
			return EncodeFloat(f), nil
		}
		return "n" + x.String(), nil
	default:
		return EncodeValue(v), nil
	}
}

// DecodeValueString renders a canonical value back to a human-readable
// JSON-ish literal (used for display and JSON re-serialisation).
func DecodeValueString(enc string) string {
	if enc == "" {
		return ""
	}
	switch enc[0] {
	case 's':
		return enc[1:]
	case 'n', 'i':
		return enc[1:]
	case 'b':
		return enc[1:]
	case 'z':
		return "null"
	case 'j':
		return enc[1:]
	default:
		return enc
	}
}

// ValueJSON renders a canonical value as a valid JSON literal.
func ValueJSON(enc string) string {
	if enc == "" {
		return `""`
	}
	switch enc[0] {
	case 's':
		return jsonString(enc[1:])
	case 'n', 'i':
		return enc[1:]
	case 'b':
		return enc[1:]
	case 'z':
		return "null"
	case 'j':
		return enc[1:]
	default:
		return jsonString(enc)
	}
}

// jsonString encodes s as a JSON string literal. strconv.Quote is not
// suitable here: it emits Go escapes like \x7f that JSON forbids.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		return `""` // unreachable: strings always marshal
	}
	return string(b)
}

// ConcatValues builds the synthetic value used by attribute-value
// expansion: the concatenation of two canonical values. The combined
// value is tagged as a string; the separator is a private-use rune so
// distinct (v1, v2) inputs always yield distinct outputs.
func ConcatValues(v1, v2 string) string {
	return "s" + v1 + "" + v2
}

// ConcatAttrs builds the synthetic attribute name used by
// attribute-value expansion.
func ConcatAttrs(a1, a2 string) string {
	return a1 + "" + a2
}

// IsSyntheticAttr reports whether the attribute name was produced by
// ConcatAttrs.
func IsSyntheticAttr(attr string) bool {
	return strings.ContainsRune(attr, '')
}
