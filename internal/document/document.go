// Package document defines the schema-free JSON document model and the
// natural-join semantics used throughout the system.
//
// A document is an unordered set of attribute-value pairs
// d = {a1:v1, a2:v2, ...}. Following the paper's join definition, two
// documents are joinable if and only if they share at least one
// attribute-value pair and have identical values for every attribute
// they have in common. Documents that share no attribute are excluded
// from the join result.
package document

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/symbol"
)

// Pair is a single attribute-value pair. Val holds the canonical
// encoding of the JSON value (see EncodeValue) so that equality of Val
// strings coincides with JSON value equality.
type Pair struct {
	Attr string
	Val  string
}

// String renders the pair as attr:value using the decoded value form.
func (p Pair) String() string {
	return p.Attr + ":" + DecodeValueString(p.Val)
}

// Key returns the canonical map key for the pair, unique across
// attribute and value. The separator cannot occur inside Attr because
// attribute names are JSON strings flattened with '.'; a rune from the
// Unicode private-use area keeps keys collision-free even for values
// containing ':' or '='.
func (p Pair) Key() string {
	return p.Attr + pairSep + p.Val
}

const pairSep = ""

// PairFromKey reconstructs a Pair from Key(). It panics on malformed
// input because keys only circulate internally.
func PairFromKey(key string) Pair {
	i := strings.Index(key, pairSep)
	if i < 0 {
		panic(fmt.Sprintf("document: malformed pair key %q", key))
	}
	return Pair{Attr: key[:i], Val: key[i+len(pairSep):]}
}

// Document is an immutable schema-free document: an identifier plus a
// set of attribute-value pairs held sorted by attribute name. At most
// one pair per attribute exists (JSON object semantics).
//
// Alongside the canonical string pairs, a document carries the interned
// symbol of every pair (see internal/symbol), so the hot kernels —
// Classify, Merge, the FP-tree probe, partition assignment — compare
// and hash integers instead of strings. The symbols are an internal
// acceleration structure: the string API is unchanged and remains the
// source of truth for display and serialisation.
type Document struct {
	ID    uint64
	pairs []Pair        // sorted by Attr, unique attrs
	syms  []symbol.Pair // parallel to pairs; interned under epoch
	epoch uint64        // symbol-table epoch the syms were interned under
}

// New builds a document from the given pairs. Pairs are copied, sorted
// by attribute, and de-duplicated; when the same attribute appears more
// than once the last value wins (matching encoding/json object
// decoding).
func New(id uint64, pairs []Pair) Document {
	cp := make([]Pair, len(pairs))
	copy(cp, pairs)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Attr < cp[j].Attr })
	out := cp[:0]
	for _, p := range cp {
		if n := len(out); n > 0 && out[n-1].Attr == p.Attr {
			out[n-1] = p
			continue
		}
		out = append(out, p)
	}
	return newFromSortedUnique(id, out)
}

// FromSorted builds a document from pairs that are already sorted by
// attribute and free of duplicate attributes — the trusted fast path
// for payloads that were produced by New on the other side of a wire.
// The invariant is verified in one linear pass; violating input falls
// back to the full New construction, so a corrupted payload cannot
// break the sorted-unique invariant. FromSorted takes ownership of the
// slice.
func FromSorted(id uint64, pairs []Pair) Document {
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].Attr >= pairs[i].Attr {
			return New(id, pairs)
		}
	}
	return newFromSortedUnique(id, pairs)
}

// newFromSortedUnique interns the pair symbols and assembles the
// document. The epoch is read before interning: if a (quiesce-only)
// symbol.Reset races with construction, the stored epoch is already
// stale and every symbol fast path safely falls back to strings.
func newFromSortedUnique(id uint64, pairs []Pair) Document {
	if len(pairs) == 0 {
		return Document{ID: id, pairs: pairs}
	}
	epoch := symbol.Epoch()
	syms := make([]symbol.Pair, len(pairs))
	for i, p := range pairs {
		syms[i] = symbol.InternPair(p.Attr, p.Val)
	}
	return Document{ID: id, pairs: pairs, syms: syms, epoch: epoch}
}

// Syms returns the document's interned pair symbols (parallel to
// Pairs) and the symbol-table epoch they were interned under. The
// returned slice must not be modified; it is nil for empty documents.
func (d Document) Syms() ([]symbol.Pair, uint64) { return d.syms, d.epoch }

// InternedPairs returns pair symbols valid for the current global
// symbol epoch, re-interning when the document was built under an
// older epoch (possible only after an explicit symbol.Reset). The
// result is parallel to Pairs and must not be modified.
func (d Document) InternedPairs() []symbol.Pair {
	if d.epoch == symbol.Epoch() {
		return d.syms
	}
	syms := make([]symbol.Pair, len(d.pairs))
	for i, p := range d.pairs {
		syms[i] = symbol.InternPair(p.Attr, p.Val)
	}
	return syms
}

// Pairs returns the document's pairs sorted by attribute. The returned
// slice must not be modified.
func (d Document) Pairs() []Pair { return d.pairs }

// MemBytes estimates the document's resident heap footprint: the
// Document value itself plus its pair slice (string headers and string
// bytes) and the parallel symbol slice. It is an accounting estimate
// for the memory governor, not an exact allocator measurement — the
// constants approximate Go's per-object layout on 64-bit platforms.
func (d Document) MemBytes() int64 {
	const (
		docBytes  = 8 + 24 + 24 + 8 // ID + pairs header + syms header + epoch
		pairBytes = 2 * 16          // two string headers
		symBytes  = 8               // one symbol.Pair
	)
	n := int64(docBytes)
	for _, p := range d.pairs {
		n += pairBytes + int64(len(p.Attr)) + int64(len(p.Val))
	}
	n += int64(len(d.syms)) * symBytes
	return n
}

// Len reports the number of attribute-value pairs.
func (d Document) Len() int { return len(d.pairs) }

// Get returns the canonical value for attr and whether it is present.
func (d Document) Get(attr string) (string, bool) {
	i := sort.Search(len(d.pairs), func(i int) bool { return d.pairs[i].Attr >= attr })
	if i < len(d.pairs) && d.pairs[i].Attr == attr {
		return d.pairs[i].Val, true
	}
	return "", false
}

// Lookup returns the human-readable value for attr (the decoded form
// of the canonical encoding) and whether it is present. Use Get when
// comparing values across documents; use Lookup for display and
// application logic on the value's content.
func (d Document) Lookup(attr string) (string, bool) {
	v, ok := d.Get(attr)
	if !ok {
		return "", false
	}
	return DecodeValueString(v), true
}

// Has reports whether the document contains the exact pair p.
func (d Document) Has(p Pair) bool {
	v, ok := d.Get(p.Attr)
	return ok && v == p.Val
}

// HasAttr reports whether the document contains attribute attr with any
// value.
func (d Document) HasAttr(attr string) bool {
	_, ok := d.Get(attr)
	return ok
}

// String renders the document as {a:v, b:w, ...} with a leading id.
func (d Document) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d{", d.ID)
	for i, p := range d.pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two documents hold exactly the same pair set
// (IDs are ignored).
func (d Document) Equal(o Document) bool {
	if len(d.pairs) != len(o.pairs) {
		return false
	}
	for i, p := range d.pairs {
		if o.pairs[i] != p {
			return false
		}
	}
	return true
}

// Relation classifies how two documents relate under natural-join
// semantics.
type Relation int

const (
	// RelDisjoint means the documents share no attribute at all; the
	// paper excludes such pairs from the join result.
	RelDisjoint Relation = iota
	// RelJoinable means the documents share at least one identical
	// attribute-value pair and have no conflicting attribute.
	RelJoinable
	// RelConflicting means at least one shared attribute carries
	// different values.
	RelConflicting
	// RelAttrOnly means the documents share attributes but not a
	// single identical pair, without conflicts. This cannot occur for
	// exact-equality semantics (a shared attribute either matches,
	// making the pair shared, or conflicts), so it is unreachable; it
	// exists to make the classification total and future-proof.
	RelAttrOnly
)

// Classify performs a single merge pass over both sorted pair sets and
// returns the relation together with the number of shared pairs.
//
// When both documents carry symbols of the same epoch, shared
// attributes and values are detected by integer equality; the string
// comparison is only consulted to steer the merge cursor when the
// attributes differ. Within one epoch the symbol tables are bijective,
// so attribute IDs are equal exactly when the attribute strings are —
// the two paths classify identically (fuzz-checked in fuzz_test.go).
func Classify(a, b Document) (Relation, int) {
	shared := 0
	sharedAttr := false
	i, j := 0, 0
	ap, bp := a.pairs, b.pairs
	if as, bs := a.syms, b.syms; as != nil && bs != nil && a.epoch == b.epoch {
		for i < len(ap) && j < len(bp) {
			sa, sb := as[i], bs[j]
			if sa.Attr() == sb.Attr() {
				sharedAttr = true
				if sa != sb {
					return RelConflicting, shared
				}
				shared++
				i++
				j++
				continue
			}
			if ap[i].Attr < bp[j].Attr {
				i++
			} else {
				j++
			}
		}
		return classifyTail(shared, sharedAttr)
	}
	for i < len(ap) && j < len(bp) {
		switch {
		case ap[i].Attr < bp[j].Attr:
			i++
		case ap[i].Attr > bp[j].Attr:
			j++
		default:
			sharedAttr = true
			if ap[i].Val != bp[j].Val {
				return RelConflicting, shared
			}
			shared++
			i++
			j++
		}
	}
	return classifyTail(shared, sharedAttr)
}

func classifyTail(shared int, sharedAttr bool) (Relation, int) {
	switch {
	case shared > 0:
		return RelJoinable, shared
	case sharedAttr:
		return RelAttrOnly, shared
	default:
		return RelDisjoint, shared
	}
}

// Joinable reports whether two documents are part of the natural join
// result: they share at least one attribute-value pair and no attribute
// they have in common carries conflicting values.
func Joinable(a, b Document) bool {
	r, _ := Classify(a, b)
	return r == RelJoinable
}

// SharedPairs returns the number of identical attribute-value pairs the
// two documents have in common, or -1 when they conflict.
func SharedPairs(a, b Document) int {
	r, n := Classify(a, b)
	if r == RelConflicting {
		return -1
	}
	return n
}

// Merge produces the natural-join output document for two joinable
// documents: the union of their pairs. The resulting document carries
// the supplied id. Merge panics if the inputs conflict, since callers
// must only merge documents that passed the join test.
//
// When both inputs carry symbols of the same epoch, the merge runs on
// integer attribute IDs and the output document inherits its symbols
// from the inputs without touching the intern tables.
func Merge(id uint64, a, b Document) Document {
	i, j := 0, 0
	ap, bp := a.pairs, b.pairs
	if as, bs := a.syms, b.syms; as != nil && bs != nil && a.epoch == b.epoch {
		merged := make([]Pair, 0, len(ap)+len(bp))
		msyms := make([]symbol.Pair, 0, len(ap)+len(bp))
		for i < len(ap) && j < len(bp) {
			sa, sb := as[i], bs[j]
			if sa.Attr() == sb.Attr() {
				if sa != sb {
					panic(fmt.Sprintf("document: Merge on conflicting documents %v and %v", a, b))
				}
				merged = append(merged, ap[i])
				msyms = append(msyms, sa)
				i++
				j++
				continue
			}
			if ap[i].Attr < bp[j].Attr {
				merged = append(merged, ap[i])
				msyms = append(msyms, sa)
				i++
			} else {
				merged = append(merged, bp[j])
				msyms = append(msyms, sb)
				j++
			}
		}
		merged = append(merged, ap[i:]...)
		msyms = append(msyms, as[i:]...)
		merged = append(merged, bp[j:]...)
		msyms = append(msyms, bs[j:]...)
		return Document{ID: id, pairs: merged, syms: msyms, epoch: a.epoch}
	}
	merged := make([]Pair, 0, len(ap)+len(bp))
	for i < len(ap) && j < len(bp) {
		switch {
		case ap[i].Attr < bp[j].Attr:
			merged = append(merged, ap[i])
			i++
		case ap[i].Attr > bp[j].Attr:
			merged = append(merged, bp[j])
			j++
		default:
			if ap[i].Val != bp[j].Val {
				panic(fmt.Sprintf("document: Merge on conflicting documents %v and %v", a, b))
			}
			merged = append(merged, ap[i])
			i++
			j++
		}
	}
	merged = append(merged, ap[i:]...)
	merged = append(merged, bp[j:]...)
	// The mixed-epoch path re-interns so the output is well-formed
	// under the current epoch.
	return newFromSortedUnique(id, merged)
}
