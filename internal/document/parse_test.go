package document

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseScalars(t *testing.T) {
	d, err := Parse(1, []byte(`{"s":"hello","i":42,"f":3.5,"b":true,"z":null}`))
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]string{
		"s": EncodeString("hello"),
		"i": EncodeInt(42),
		"f": EncodeFloat(3.5),
		"b": EncodeBool(true),
		"z": EncodeNull(),
	}
	for attr, want := range checks {
		if got, ok := d.Get(attr); !ok || got != want {
			t.Errorf("Get(%s) = %q,%v; want %q", attr, got, ok, want)
		}
	}
}

func TestParseIntegerFloatEquivalence(t *testing.T) {
	a := MustParse(1, `{"n": 2}`)
	b := MustParse(2, `{"n": 2.0}`)
	if !Joinable(a, b) {
		t.Error("2 and 2.0 must compare equal under canonical encoding")
	}
}

func TestParseNestedObjectFlattening(t *testing.T) {
	d := MustParse(1, `{"nested_obj":{"str":"x","num":7},"top":"y"}`)
	if v, ok := d.Get("nested_obj.str"); !ok || v != EncodeString("x") {
		t.Errorf("nested_obj.str = %q,%v", v, ok)
	}
	if v, ok := d.Get("nested_obj.num"); !ok || v != EncodeInt(7) {
		t.Errorf("nested_obj.num = %q,%v", v, ok)
	}
	if d.HasAttr("nested_obj") {
		t.Error("flattened parent attribute must not exist")
	}
}

func TestParseDeepNesting(t *testing.T) {
	d := MustParse(1, `{"a":{"b":{"c":{"d":1}}}}`)
	if v, ok := d.Get("a.b.c.d"); !ok || v != EncodeInt(1) {
		t.Errorf("a.b.c.d = %q,%v", v, ok)
	}
}

func TestParseArrayOpaque(t *testing.T) {
	a := MustParse(1, `{"arr":["x","y"]}`)
	b := MustParse(2, `{"arr":["x","y"]}`)
	c := MustParse(3, `{"arr":["y","x"]}`)
	if !Joinable(a, b) {
		t.Error("identical arrays must join")
	}
	if Joinable(a, c) {
		t.Error("differently-ordered arrays are distinct values")
	}
}

func TestParseError(t *testing.T) {
	if _, err := Parse(1, []byte(`{"a":`)); err == nil {
		t.Error("truncated JSON must error")
	}
	if _, err := Parse(1, []byte(`[1,2]`)); err == nil {
		t.Error("non-object JSON must error")
	}
}

func TestParseStream(t *testing.T) {
	data := []byte(`{"a":1}` + "\n" + `{"b":2}` + "\n" + `{"c":3}`)
	docs, err := ParseStream(10, data)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("got %d docs", len(docs))
	}
	for i, d := range docs {
		if d.ID != uint64(10+i) {
			t.Errorf("doc %d id = %d", i, d.ID)
		}
	}
}

func TestParseStreamError(t *testing.T) {
	if _, err := ParseStream(0, []byte(`{"a":1}{"b":`)); err == nil {
		t.Error("truncated stream must error")
	}
}

func TestMarshalJSONRoundTripsJoinSemantics(t *testing.T) {
	src := `{"User":"A","MsgId":2,"ok":true,"ratio":0.5,"nil":null}`
	d := MustParse(1, src)
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(2, out)
	if err != nil {
		t.Fatalf("re-parse %s: %v", out, err)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip changed document: %v vs %v", d, d2)
	}
}

func TestMarshalJSONQuotesStrings(t *testing.T) {
	d := MustParse(1, `{"a":"has \"quotes\""}`)
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(out) {
		t.Errorf("invalid JSON: %s", out)
	}
	if !strings.Contains(string(out), `\"quotes\"`) {
		t.Errorf("quoting lost: %s", out)
	}
}

func TestCollectAttrStatsCounts(t *testing.T) {
	docs := []Document{
		MustParse(1, `{"a":1,"b":2}`),
		MustParse(2, `{"a":2}`),
	}
	s := CollectAttrStats(docs)
	if s.DocCount["a"] != 2 || s.DocCount["b"] != 1 {
		t.Errorf("DocCount = %v", s.DocCount)
	}
	if s.Distinct["a"] != 2 || s.Distinct["b"] != 1 {
		t.Errorf("Distinct = %v", s.Distinct)
	}
	if s.TotalDocs != 2 {
		t.Errorf("TotalDocs = %d", s.TotalDocs)
	}
}

func TestConcatHelpers(t *testing.T) {
	v := ConcatValues(EncodeString("x"), EncodeBool(true))
	v2 := ConcatValues(EncodeString("x"), EncodeBool(false))
	if v == v2 {
		t.Error("distinct inputs produced equal concatenated values")
	}
	a := ConcatAttrs("bool", "str1")
	if !IsSyntheticAttr(a) {
		t.Error("concatenated attribute not recognised as synthetic")
	}
	if IsSyntheticAttr("plain") {
		t.Error("plain attribute misclassified as synthetic")
	}
}

func TestValueJSONForms(t *testing.T) {
	cases := map[string]string{
		EncodeString("x"):            `"x"`,
		EncodeInt(5):                 `5`,
		EncodeFloat(2.5):             `2.5`,
		EncodeBool(false):            `false`,
		EncodeNull():                 `null`,
		EncodeArrayJSON(`["a","b"]`): `["a","b"]`,
	}
	for enc, want := range cases {
		if got := ValueJSON(enc); got != want {
			t.Errorf("ValueJSON(%q) = %s, want %s", enc, got, want)
		}
	}
}
