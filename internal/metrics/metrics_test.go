package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGiniEqualLoads(t *testing.T) {
	if g := Gini([]float64{5, 5, 5, 5}); !almost(g, 0) {
		t.Errorf("Gini equal = %g, want 0", g)
	}
}

func TestGiniSingleDominant(t *testing.T) {
	// One of n elements holds everything: G = (n-1)/n.
	g := Gini([]float64{0, 0, 0, 100})
	if !almost(g, 0.75) {
		t.Errorf("Gini dominant = %g, want 0.75", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// For loads 1,2,3,4: G = 0.25 (classic textbook value).
	g := Gini([]float64{1, 2, 3, 4})
	if !almost(g, 0.25) {
		t.Errorf("Gini(1..4) = %g, want 0.25", g)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if g := Gini(nil); g != 0 {
		t.Errorf("Gini(nil) = %g", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Errorf("Gini(zeros) = %g", g)
	}
	if g := Gini([]float64{7}); !almost(g, 0) {
		t.Errorf("Gini(single) = %g", g)
	}
}

func TestGiniPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative load did not panic")
		}
	}()
	Gini([]float64{1, -1})
}

func TestQuickGiniRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = float64(r.Intn(1000))
		}
		g := Gini(loads)
		return g >= -1e-12 && g <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickGiniScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		loads := make([]float64, n)
		scaled := make([]float64, n)
		for i := range loads {
			loads[i] = float64(1 + r.Intn(100))
			scaled[i] = loads[i] * 7
		}
		return almost(Gini(loads), Gini(scaled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowStatsReplication(t *testing.T) {
	w := NewWindowStats(4)
	w.RecordDelivery([]int{0}, false)
	w.RecordDelivery([]int{1, 2}, false)
	w.RecordDelivery([]int{0, 1, 2, 3}, true)
	if r := w.Replication(); !almost(r, 7.0/3.0) {
		t.Errorf("Replication = %g, want 7/3", r)
	}
	if w.Broadcasts != 1 {
		t.Errorf("Broadcasts = %d", w.Broadcasts)
	}
	if l := w.MaxProcessingLoad(); !almost(l, 2.0/3.0) {
		t.Errorf("MaxProcessingLoad = %g, want 2/3", l)
	}
}

func TestWindowStatsEmpty(t *testing.T) {
	w := NewWindowStats(3)
	if w.Replication() != 0 || w.MaxProcessingLoad() != 0 || w.LoadBalance() != 0 {
		t.Error("empty window must report zeros")
	}
}

func TestRunStatsAverages(t *testing.T) {
	var r RunStats
	w1 := NewWindowStats(2)
	w1.RecordDelivery([]int{0}, false)
	w1.RecordDelivery([]int{0, 1}, false)
	w1.Repartitioned = true
	w2 := NewWindowStats(2)
	w2.RecordDelivery([]int{1}, false)
	r.Add(w1)
	r.Add(w2)
	if got := r.AvgReplication(); !almost(got, (1.5+1.0)/2) {
		t.Errorf("AvgReplication = %g", got)
	}
	if got := r.RepartitionRate(); !almost(got, 50) {
		t.Errorf("RepartitionRate = %g, want 50", got)
	}
}

func TestRunStatsSkipsEmptyWindows(t *testing.T) {
	var r RunStats
	w := NewWindowStats(2)
	w.RecordDelivery([]int{0, 1}, false)
	r.Add(NewWindowStats(2)) // empty
	r.Add(w)
	if got := r.AvgReplication(); !almost(got, 2) {
		t.Errorf("AvgReplication = %g, want 2 (empty window skipped)", got)
	}
}

func TestRelChange(t *testing.T) {
	if v := RelChange(2, 3); !almost(v, 0.5) {
		t.Errorf("RelChange(2,3) = %g", v)
	}
	if v := RelChange(0, 0); v != 0 {
		t.Errorf("RelChange(0,0) = %g", v)
	}
	if v := RelChange(0, 1); !math.IsInf(v, 1) {
		t.Errorf("RelChange(0,1) = %g, want +Inf", v)
	}
	if v := RelChange(4, 2); !almost(v, -0.5) {
		t.Errorf("RelChange(4,2) = %g", v)
	}
}

func TestSummaryStrings(t *testing.T) {
	w := NewWindowStats(2)
	w.RecordDelivery([]int{0}, false)
	if s := w.String(); s == "" {
		t.Error("empty String")
	}
	var r RunStats
	r.Add(w)
	if s := r.Summary(); s == "" {
		t.Error("empty Summary")
	}
}
