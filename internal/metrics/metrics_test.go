package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/telemetry"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func mustGini[T Real](t *testing.T, loads []T) float64 {
	t.Helper()
	g, err := Gini(loads)
	if err != nil {
		t.Fatalf("Gini(%v): %v", loads, err)
	}
	return g
}

func TestGiniEqualLoads(t *testing.T) {
	if g := mustGini(t, []float64{5, 5, 5, 5}); !almost(g, 0) {
		t.Errorf("Gini equal = %g, want 0", g)
	}
}

func TestGiniSingleDominant(t *testing.T) {
	// One of n elements holds everything: G = (n-1)/n.
	g := mustGini(t, []float64{0, 0, 0, 100})
	if !almost(g, 0.75) {
		t.Errorf("Gini dominant = %g, want 0.75", g)
	}
}

func TestGiniKnownValue(t *testing.T) {
	// For loads 1,2,3,4: G = 0.25 (classic textbook value).
	g := mustGini(t, []float64{1, 2, 3, 4})
	if !almost(g, 0.25) {
		t.Errorf("Gini(1..4) = %g, want 0.25", g)
	}
}

func TestGiniEdgeCases(t *testing.T) {
	if g := mustGini[float64](t, nil); g != 0 {
		t.Errorf("Gini(nil) = %g", g)
	}
	if g := mustGini(t, []float64{0, 0}); g != 0 {
		t.Errorf("Gini(zeros) = %g", g)
	}
	if g := mustGini(t, []float64{7}); !almost(g, 0) {
		t.Errorf("Gini(single) = %g", g)
	}
}

// TestGiniNegativeLoad: a negative load (a measurement error) must not
// panic — Gini reports an error, SafeGini clamps and counts. A panic on
// a live telemetry path would kill the worker serving the scrape.
func TestGiniNegativeLoad(t *testing.T) {
	g, err := Gini([]float64{1, -1})
	if err == nil {
		t.Error("negative load must yield an error")
	}
	if clamped, _ := Gini([]float64{1, 0}); !almost(g, clamped) {
		t.Errorf("errored Gini = %g, want the clamped value %g", g, clamped)
	}
	sg, n := SafeGini([]int{3, -2, 1})
	if n != 1 {
		t.Errorf("SafeGini clamped = %d, want 1", n)
	}
	want, _ := Gini([]int{3, 0, 1})
	if !almost(sg, want) {
		t.Errorf("SafeGini = %g, want %g", sg, want)
	}
}

// TestGiniGenericTypes: one generic Gini covers the old Gini/GiniInt
// split.
func TestGiniGenericTypes(t *testing.T) {
	gi := mustGini(t, []int{1, 2, 3, 4})
	gf := mustGini(t, []float64{1, 2, 3, 4})
	g32 := mustGini(t, []int32{1, 2, 3, 4})
	if !almost(gi, gf) || !almost(gi, g32) || !almost(gi, 0.25) {
		t.Errorf("generic Gini disagrees: int=%g float64=%g int32=%g", gi, gf, g32)
	}
}

func TestQuickGiniRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = float64(r.Intn(1000))
		}
		g, err := Gini(loads)
		return err == nil && g >= -1e-12 && g <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickGiniScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(10)
		loads := make([]float64, n)
		scaled := make([]float64, n)
		for i := range loads {
			loads[i] = float64(1 + r.Intn(100))
			scaled[i] = loads[i] * 7
		}
		ga, _ := Gini(loads)
		gb, _ := Gini(scaled)
		return almost(ga, gb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowStatsReplication(t *testing.T) {
	w := NewWindowStats(4)
	w.RecordDelivery([]int{0}, false)
	w.RecordDelivery([]int{1, 2}, false)
	w.RecordDelivery([]int{0, 1, 2, 3}, true)
	if r := w.Replication(); !almost(r, 7.0/3.0) {
		t.Errorf("Replication = %g, want 7/3", r)
	}
	if w.Broadcasts != 1 {
		t.Errorf("Broadcasts = %d", w.Broadcasts)
	}
	if l := w.MaxProcessingLoad(); !almost(l, 2.0/3.0) {
		t.Errorf("MaxProcessingLoad = %g, want 2/3", l)
	}
}

func TestWindowStatsEmpty(t *testing.T) {
	w := NewWindowStats(3)
	if w.Replication() != 0 || w.MaxProcessingLoad() != 0 || w.LoadBalance() != 0 {
		t.Error("empty window must report zeros")
	}
}

func TestRunStatsAverages(t *testing.T) {
	var r RunStats
	w1 := NewWindowStats(2)
	w1.RecordDelivery([]int{0}, false)
	w1.RecordDelivery([]int{0, 1}, false)
	w1.Repartitioned = true
	w2 := NewWindowStats(2)
	w2.RecordDelivery([]int{1}, false)
	r.Add(w1)
	r.Add(w2)
	if got := r.AvgReplication(); !almost(got, (1.5+1.0)/2) {
		t.Errorf("AvgReplication = %g", got)
	}
	if got := r.RepartitionRate(); !almost(got, 50) {
		t.Errorf("RepartitionRate = %g, want 50", got)
	}
}

func TestRunStatsSkipsEmptyWindows(t *testing.T) {
	var r RunStats
	w := NewWindowStats(2)
	w.RecordDelivery([]int{0, 1}, false)
	r.Add(NewWindowStats(2)) // empty
	r.Add(w)
	if got := r.AvgReplication(); !almost(got, 2) {
		t.Errorf("AvgReplication = %g, want 2 (empty window skipped)", got)
	}
}

func TestRelChange(t *testing.T) {
	if v := RelChange(2, 3); !almost(v, 0.5) {
		t.Errorf("RelChange(2,3) = %g", v)
	}
	if v := RelChange(0, 0); v != 0 {
		t.Errorf("RelChange(0,0) = %g", v)
	}
	if v := RelChange(0, 1); !math.IsInf(v, 1) {
		t.Errorf("RelChange(0,1) = %g, want +Inf", v)
	}
	if v := RelChange(4, 2); !almost(v, -0.5) {
		t.Errorf("RelChange(4,2) = %g", v)
	}
}

func TestSummaryStrings(t *testing.T) {
	w := NewWindowStats(2)
	w.RecordDelivery([]int{0}, false)
	if s := w.String(); s == "" {
		t.Error("empty String")
	}
	var r RunStats
	r.Add(w)
	if s := r.Summary(); s == "" {
		t.Error("empty Summary")
	}
}

func TestViewsAndPublish(t *testing.T) {
	w := NewWindowStats(2)
	w.RecordDelivery([]int{0, 1}, true)
	view := w.View()
	if !almost(view["partition_window_replication"], 2) {
		t.Errorf("window view replication = %g, want 2", view["partition_window_replication"])
	}
	var r RunStats
	r.Add(w)
	reg := telemetry.NewRegistry()
	r.PublishTo(reg)
	snap := reg.Snapshot()
	if got := snap.Gauge("run_avg_replication"); !almost(got, 2) {
		t.Errorf("published run_avg_replication = %g, want 2", got)
	}
	if got := snap.Gauge("run_windows"); got != 1 {
		t.Errorf("published run_windows = %g, want 1", got)
	}
	r.PublishTo(nil) // must be a no-op, not a panic
}
