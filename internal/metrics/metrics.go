// Package metrics implements the performance measurements of the
// paper's Section VII-C: replication, per-joiner processing load,
// maximal processing load, and the Gini coefficient used to assess load
// balance.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// Real is any numeric load type Gini accepts.
type Real interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Gini computes the Gini coefficient of the given non-negative loads.
// 0 means perfectly equal distribution; values approach 1 as a single
// element dominates. An empty or all-zero input yields 0. A negative
// load is a measurement error and yields a non-nil error (with the
// coefficient of the clamped-to-zero loads, so a caller that chooses
// to proceed still gets a defined value).
func Gini[T Real](loads []T) (float64, error) {
	g, clamped := SafeGini(loads)
	if clamped > 0 {
		return g, fmt.Errorf("metrics: %d negative load(s) clamped to 0", clamped)
	}
	return g, nil
}

// SafeGini is the never-failing Gini used on live telemetry paths: a
// negative load (a measurement error) is clamped to zero and counted in
// the second return value instead of propagating an error — a bad
// sample must never kill a worker or a scrape.
func SafeGini[T Real](loads []T) (g float64, clamped int) {
	n := len(loads)
	if n == 0 {
		return 0, 0
	}
	sorted := make([]float64, n)
	for i, v := range loads {
		f := float64(v)
		if f < 0 {
			f = 0
			clamped++
		}
		sorted[i] = f
	}
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0, clamped
	}
	// G = (2*Σ i*x_i)/(n*Σ x_i) - (n+1)/n for ascending-sorted x.
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n), clamped
}

// WindowStats aggregates the routing statistics of one time window.
type WindowStats struct {
	// Documents is the number of distinct documents emitted in the
	// window.
	Documents int
	// Deliveries is the total number of (document, joiner) deliveries,
	// i.e. Σ over documents of the number of machines each document was
	// sent to.
	Deliveries int
	// PerJoiner counts deliveries per joiner index.
	PerJoiner []int
	// Broadcasts counts the documents that matched no partition and
	// were sent to every joiner to guarantee completeness.
	Broadcasts int
	// Updates counts δ-gated partition update requests issued.
	Updates int
	// Repartitioned records whether this window triggered partition
	// recomputation.
	Repartitioned bool
}

// NewWindowStats prepares stats for m joiners.
func NewWindowStats(m int) *WindowStats {
	return &WindowStats{PerJoiner: make([]int, m)}
}

// RecordDelivery registers a document delivered to the given set of
// joiner indexes; broadcast marks a no-partition fallback.
func (w *WindowStats) RecordDelivery(joiners []int, broadcast bool) {
	w.Documents++
	w.Deliveries += len(joiners)
	for _, j := range joiners {
		w.PerJoiner[j]++
	}
	if broadcast {
		w.Broadcasts++
	}
}

// Replication is the average number of times a document was sent from
// the Assigners to the Joiners (paper Sec. VII-C). It is 0 for an empty
// window and otherwise lies in [1, m].
func (w *WindowStats) Replication() float64 {
	if w.Documents == 0 {
		return 0
	}
	return float64(w.Deliveries) / float64(w.Documents)
}

// MaxProcessingLoad is the highest fraction of the window's emitted
// documents assigned to a single joiner.
func (w *WindowStats) MaxProcessingLoad() float64 {
	if w.Documents == 0 {
		return 0
	}
	max := 0
	for _, v := range w.PerJoiner {
		if v > max {
			max = v
		}
	}
	return float64(max) / float64(w.Documents)
}

// LoadBalance is the Gini coefficient over the per-joiner loads.
func (w *WindowStats) LoadBalance() float64 {
	g, _ := SafeGini(w.PerJoiner)
	return g
}

// String summarises the window for logs.
func (w *WindowStats) String() string {
	return fmt.Sprintf("docs=%d repl=%.3f gini=%.3f maxload=%.3f broadcast=%d",
		w.Documents, w.Replication(), w.LoadBalance(), w.MaxProcessingLoad(), w.Broadcasts)
}

// RunStats accumulates per-window statistics over a whole run and
// exposes the averages the paper plots.
type RunStats struct {
	Windows []*WindowStats
}

// Add appends a finished window.
func (r *RunStats) Add(w *WindowStats) { r.Windows = append(r.Windows, w) }

// AvgReplication averages Replication over non-empty windows.
func (r *RunStats) AvgReplication() float64 {
	return r.avg(func(w *WindowStats) float64 { return w.Replication() })
}

// AvgLoadBalance averages the Gini coefficient over non-empty windows.
func (r *RunStats) AvgLoadBalance() float64 {
	return r.avg(func(w *WindowStats) float64 { return w.LoadBalance() })
}

// AvgMaxProcessingLoad averages MaxProcessingLoad over non-empty
// windows.
func (r *RunStats) AvgMaxProcessingLoad() float64 {
	return r.avg(func(w *WindowStats) float64 { return w.MaxProcessingLoad() })
}

// RepartitionRate is the percentage of windows that triggered partition
// recomputation (paper Fig. 9).
func (r *RunStats) RepartitionRate() float64 {
	if len(r.Windows) == 0 {
		return 0
	}
	n := 0
	for _, w := range r.Windows {
		if w.Repartitioned {
			n++
		}
	}
	return 100 * float64(n) / float64(len(r.Windows))
}

func (r *RunStats) avg(f func(*WindowStats) float64) float64 {
	var sum float64
	n := 0
	for _, w := range r.Windows {
		if w.Documents == 0 {
			continue
		}
		sum += f(w)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary renders the run in a fixed-width table row format.
func (r *RunStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "windows=%d avg_repl=%.3f avg_gini=%.3f avg_maxload=%.3f repart=%.1f%%",
		len(r.Windows), r.AvgReplication(), r.AvgLoadBalance(), r.AvgMaxProcessingLoad(), r.RepartitionRate())
	return b.String()
}

// View renders the window's derived metrics under the telemetry series
// vocabulary — the same names the live partition_window_* gauges use —
// so post-hoc analysis and dashboards read one naming scheme.
func (w *WindowStats) View() map[string]float64 {
	return map[string]float64{
		"partition_window_documents":   float64(w.Documents),
		"partition_window_deliveries":  float64(w.Deliveries),
		"partition_window_replication": w.Replication(),
		"partition_window_gini":        w.LoadBalance(),
		"partition_window_max_load":    w.MaxProcessingLoad(),
		"partition_window_broadcasts":  float64(w.Broadcasts),
		"partition_window_updates":     float64(w.Updates),
	}
}

// View renders the run's aggregate metrics under the telemetry series
// vocabulary.
func (r *RunStats) View() map[string]float64 {
	return map[string]float64{
		"run_windows":              float64(len(r.Windows)),
		"run_avg_replication":      r.AvgReplication(),
		"run_avg_gini":             r.AvgLoadBalance(),
		"run_avg_max_load":         r.AvgMaxProcessingLoad(),
		"run_repartition_rate_pct": r.RepartitionRate(),
	}
}

// PublishTo writes the run's aggregate view into a telemetry registry
// as gauges, so a post-run scrape (or Report.Telemetry snapshot)
// carries the paper's headline numbers next to the live counters. A nil
// registry is a no-op.
func (r *RunStats) PublishTo(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for name, v := range r.View() {
		reg.Gauge(name).Set(v)
	}
}

// RelChange returns the relative increase of cur over base, guarding
// against a zero baseline; used for the θ repartitioning trigger.
func RelChange(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base
}
