// Package metrics implements the performance measurements of the
// paper's Section VII-C: replication, per-joiner processing load,
// maximal processing load, and the Gini coefficient used to assess load
// balance.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gini computes the Gini coefficient of the given non-negative loads.
// 0 means perfectly equal distribution; values approach 1 as a single
// element dominates. An empty or all-zero input yields 0.
func Gini(loads []float64) float64 {
	n := len(loads)
	if n == 0 {
		return 0
	}
	sorted := make([]float64, n)
	copy(sorted, loads)
	sort.Float64s(sorted)
	var sum, weighted float64
	for i, v := range sorted {
		if v < 0 {
			panic(fmt.Sprintf("metrics: negative load %g", v))
		}
		sum += v
		weighted += float64(i+1) * v
	}
	if sum == 0 {
		return 0
	}
	// G = (2*Σ i*x_i)/(n*Σ x_i) - (n+1)/n for ascending-sorted x.
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}

// GiniInt is Gini over integer loads.
func GiniInt(loads []int) float64 {
	f := make([]float64, len(loads))
	for i, v := range loads {
		f[i] = float64(v)
	}
	return Gini(f)
}

// WindowStats aggregates the routing statistics of one time window.
type WindowStats struct {
	// Documents is the number of distinct documents emitted in the
	// window.
	Documents int
	// Deliveries is the total number of (document, joiner) deliveries,
	// i.e. Σ over documents of the number of machines each document was
	// sent to.
	Deliveries int
	// PerJoiner counts deliveries per joiner index.
	PerJoiner []int
	// Broadcasts counts the documents that matched no partition and
	// were sent to every joiner to guarantee completeness.
	Broadcasts int
	// Updates counts δ-gated partition update requests issued.
	Updates int
	// Repartitioned records whether this window triggered partition
	// recomputation.
	Repartitioned bool
}

// NewWindowStats prepares stats for m joiners.
func NewWindowStats(m int) *WindowStats {
	return &WindowStats{PerJoiner: make([]int, m)}
}

// RecordDelivery registers a document delivered to the given set of
// joiner indexes; broadcast marks a no-partition fallback.
func (w *WindowStats) RecordDelivery(joiners []int, broadcast bool) {
	w.Documents++
	w.Deliveries += len(joiners)
	for _, j := range joiners {
		w.PerJoiner[j]++
	}
	if broadcast {
		w.Broadcasts++
	}
}

// Replication is the average number of times a document was sent from
// the Assigners to the Joiners (paper Sec. VII-C). It is 0 for an empty
// window and otherwise lies in [1, m].
func (w *WindowStats) Replication() float64 {
	if w.Documents == 0 {
		return 0
	}
	return float64(w.Deliveries) / float64(w.Documents)
}

// MaxProcessingLoad is the highest fraction of the window's emitted
// documents assigned to a single joiner.
func (w *WindowStats) MaxProcessingLoad() float64 {
	if w.Documents == 0 {
		return 0
	}
	max := 0
	for _, v := range w.PerJoiner {
		if v > max {
			max = v
		}
	}
	return float64(max) / float64(w.Documents)
}

// LoadBalance is the Gini coefficient over the per-joiner loads.
func (w *WindowStats) LoadBalance() float64 {
	return GiniInt(w.PerJoiner)
}

// String summarises the window for logs.
func (w *WindowStats) String() string {
	return fmt.Sprintf("docs=%d repl=%.3f gini=%.3f maxload=%.3f broadcast=%d",
		w.Documents, w.Replication(), w.LoadBalance(), w.MaxProcessingLoad(), w.Broadcasts)
}

// RunStats accumulates per-window statistics over a whole run and
// exposes the averages the paper plots.
type RunStats struct {
	Windows []*WindowStats
}

// Add appends a finished window.
func (r *RunStats) Add(w *WindowStats) { r.Windows = append(r.Windows, w) }

// AvgReplication averages Replication over non-empty windows.
func (r *RunStats) AvgReplication() float64 {
	return r.avg(func(w *WindowStats) float64 { return w.Replication() })
}

// AvgLoadBalance averages the Gini coefficient over non-empty windows.
func (r *RunStats) AvgLoadBalance() float64 {
	return r.avg(func(w *WindowStats) float64 { return w.LoadBalance() })
}

// AvgMaxProcessingLoad averages MaxProcessingLoad over non-empty
// windows.
func (r *RunStats) AvgMaxProcessingLoad() float64 {
	return r.avg(func(w *WindowStats) float64 { return w.MaxProcessingLoad() })
}

// RepartitionRate is the percentage of windows that triggered partition
// recomputation (paper Fig. 9).
func (r *RunStats) RepartitionRate() float64 {
	if len(r.Windows) == 0 {
		return 0
	}
	n := 0
	for _, w := range r.Windows {
		if w.Repartitioned {
			n++
		}
	}
	return 100 * float64(n) / float64(len(r.Windows))
}

func (r *RunStats) avg(f func(*WindowStats) float64) float64 {
	var sum float64
	n := 0
	for _, w := range r.Windows {
		if w.Documents == 0 {
			continue
		}
		sum += f(w)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summary renders the run in a fixed-width table row format.
func (r *RunStats) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "windows=%d avg_repl=%.3f avg_gini=%.3f avg_maxload=%.3f repart=%.1f%%",
		len(r.Windows), r.AvgReplication(), r.AvgLoadBalance(), r.AvgMaxProcessingLoad(), r.RepartitionRate())
	return b.String()
}

// RelChange returns the relative increase of cur over base, guarding
// against a zero baseline; used for the θ repartitioning trigger.
func RelChange(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (cur - base) / base
}
