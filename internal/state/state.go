// Package state defines the explicit operator-state contract the
// scale-out join's stateful components implement: a Snapshotter that
// can serialize itself into (and restore itself from) an opaque byte
// stream, a small versioned + checksummed envelope wrapped around
// every snapshot, and a pluggable Store keyed by (task, window) that
// holds the per-window checkpoint history a recovering run restores
// from.
//
// The envelope exists so a restore can fail loudly instead of
// misinterpreting bytes: it records a magic number, a format version,
// the snapshot kind (e.g. "fptree", "assigner") and a CRC32 of the
// payload. Payloads themselves are symbol-aware — components that
// intern strings (the FP-tree, partition tables, documents) serialize
// the strings and re-intern on restore, so a snapshot taken in one
// process (or symbol epoch) restores correctly in another.
package state

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Snapshotter is the operator-state contract: a component that can
// write its complete durable state to w and later rebuild itself from
// the same bytes. Restore must leave the receiver equivalent to the
// snapshotted original for all subsequent operations; it may assume
// the receiver is freshly constructed (zero operational state).
type Snapshotter interface {
	Snapshot(w io.Writer) error
	Restore(r io.Reader) error
}

// Envelope format constants.
const (
	// magic identifies a state envelope ("SFJS" = schema-free join
	// state).
	magic = "SFJS"
	// FormatVersion is the envelope format version written by this
	// package. Readers reject versions they do not understand.
	FormatVersion = 1
	// maxKindLen bounds the kind string so a corrupt header cannot ask
	// for an absurd allocation.
	maxKindLen = 255
)

// WriteEnvelope frames payload for kind into w: magic, format
// version, kind, payload length, payload, CRC32 (IEEE) of the payload.
func WriteEnvelope(w io.Writer, kind string, payload []byte) error {
	if len(kind) == 0 || len(kind) > maxKindLen {
		return fmt.Errorf("state: invalid snapshot kind %q", kind)
	}
	var hdr bytes.Buffer
	hdr.WriteString(magic)
	hdr.WriteByte(FormatVersion)
	hdr.WriteByte(byte(len(kind)))
	hdr.WriteString(kind)
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	hdr.Write(n[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return fmt.Errorf("state: write envelope header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("state: write envelope payload: %w", err)
	}
	binary.BigEndian.PutUint32(n[:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(n[:]); err != nil {
		return fmt.Errorf("state: write envelope checksum: %w", err)
	}
	return nil
}

// ReadEnvelope parses an envelope from r, verifies magic, version,
// kind and checksum, and returns the payload.
func ReadEnvelope(r io.Reader, wantKind string) ([]byte, error) {
	var m [6]byte // magic + version + kind length
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return nil, fmt.Errorf("state: read envelope header: %w", err)
	}
	if string(m[:4]) != magic {
		return nil, fmt.Errorf("state: bad magic %q (not a state snapshot)", m[:4])
	}
	if m[4] != FormatVersion {
		return nil, fmt.Errorf("state: unsupported envelope version %d (want %d)", m[4], FormatVersion)
	}
	kind := make([]byte, int(m[5]))
	if _, err := io.ReadFull(r, kind); err != nil {
		return nil, fmt.Errorf("state: read envelope kind: %w", err)
	}
	if string(kind) != wantKind {
		return nil, fmt.Errorf("state: snapshot kind %q, want %q", kind, wantKind)
	}
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("state: read envelope length: %w", err)
	}
	payload := make([]byte, binary.BigEndian.Uint32(n[:]))
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("state: read envelope payload: %w", err)
	}
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, fmt.Errorf("state: read envelope checksum: %w", err)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(n[:]); got != want {
		return nil, fmt.Errorf("state: checksum mismatch (payload %08x, recorded %08x)", got, want)
	}
	return payload, nil
}

// Encode snapshots s and frames the result in an envelope of the
// given kind.
func Encode(kind string, s Snapshotter) ([]byte, error) {
	var payload bytes.Buffer
	if err := s.Snapshot(&payload); err != nil {
		return nil, fmt.Errorf("state: snapshot %s: %w", kind, err)
	}
	var out bytes.Buffer
	if err := WriteEnvelope(&out, kind, payload.Bytes()); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}

// Decode verifies the envelope of data against kind and restores s
// from the payload.
func Decode(kind string, data []byte, s Snapshotter) error {
	payload, err := ReadEnvelope(bytes.NewReader(data), kind)
	if err != nil {
		return err
	}
	if err := s.Restore(bytes.NewReader(payload)); err != nil {
		return fmt.Errorf("state: restore %s: %w", kind, err)
	}
	return nil
}
