package state

import (
	"bytes"
	"errors"
	"reflect"
	"syscall"
	"testing"
)

func TestFaultStoreENOSPC(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), []FaultEvent{{Kind: FaultENOSPC, After: 1}})
	if err := fs.Save("t", 0, []byte("first")); err != nil {
		t.Fatalf("save 0: %v", err)
	}
	err := fs.Save("t", 1, []byte("second"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("save 1 = %v, want ENOSPC", err)
	}
	if _, lerr := fs.Load("t", 1); lerr == nil {
		t.Fatal("ENOSPC save still wrote data")
	}
	if err := fs.Save("t", 2, []byte("third")); err != nil {
		t.Fatalf("save after fault window: %v", err)
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fs.Injected())
	}
}

func TestFaultStoreTornAndShortWrite(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), []FaultEvent{
		{Kind: FaultTornWrite, After: 0},
		{Kind: FaultShortWrite, After: 1},
	})
	payload := []byte("0123456789abcdef")

	// Torn write: success reported, but only a prefix stored.
	if err := fs.Save("t", 0, payload); err != nil {
		t.Fatalf("torn write reported error: %v", err)
	}
	got, err := fs.Load("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:len(payload)/2]) {
		t.Fatalf("torn write stored %q", got)
	}

	// Short write: error reported, prefix stored.
	if err := fs.Save("t", 1, payload); err == nil {
		t.Fatal("short write reported success")
	}
	got, err = fs.Load("t", 1)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("short write stored the full payload")
	}
}

func TestFaultStoreReadFaults(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), []FaultEvent{
		{Kind: FaultReadCorrupt, After: 0},
		{Kind: FaultReadErr, After: 1},
	})
	payload := []byte("envelope-protected bytes")
	if err := fs.Save("t", 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Load("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, payload) {
		t.Fatal("corrupt read returned intact data")
	}
	if _, err := fs.Load("t", 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read 1 = %v, want EIO", err)
	}
	// Fault window over: reads are clean again, and the corruption never
	// reached the stored bytes.
	got, err = fs.Load("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stored bytes corrupted at rest: %q", got)
	}
}

// Corruption injected by FaultStore must be caught by the envelope CRC
// — the exact failure chain the spill reload path depends on.
func TestFaultStoreCorruptionCaughtByEnvelope(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), []FaultEvent{{Kind: FaultReadCorrupt, After: 0}})
	enc, err := Encode("pane", &blob{data: []byte("spilled pane payload")})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Save("t", 0, enc); err != nil {
		t.Fatal(err)
	}
	data, err := fs.Load("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := Decode("pane", data, &blob{}); err == nil {
		t.Fatal("corrupted envelope decoded cleanly")
	}
}

func TestFaultStoreCountsAndPassThrough(t *testing.T) {
	fs := NewFaultStore(NewMemStore(), nil)
	for w := 0; w < 3; w++ {
		if err := fs.Save("t", w, []byte{byte(w)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := fs.Load("t", 1); err != nil {
		t.Fatal(err)
	}
	saves, loads := fs.Ops()
	if saves != 3 || loads != 1 {
		t.Fatalf("ops = %d saves, %d loads", saves, loads)
	}
	if fs.Injected() != 0 {
		t.Fatalf("injected = %d on empty script", fs.Injected())
	}
	if got := fs.Windows("t"); len(got) != 3 {
		t.Fatalf("Windows = %v", got)
	}
	if w, ok := fs.MaxWindow("t"); !ok || w != 2 {
		t.Fatalf("MaxWindow = %d, %v", w, ok)
	}
	if got := fs.Tasks(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tasks = %v", got)
	}
	if err := fs.Remove("t", 2); err != nil {
		t.Fatal(err)
	}
	if err := fs.Prune("t", 0); err != nil {
		t.Fatal(err)
	}
	if got := fs.Windows("t"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Windows after prune = %v", got)
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	a := RandomFaults(42, 8)
	b := RandomFaults(42, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different scripts")
	}
	c := RandomFaults(43, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical scripts")
	}
	if len(a) != 8 {
		t.Fatalf("script length = %d", len(a))
	}
	for _, e := range a {
		if e.Kind == FaultNone {
			t.Fatal("RandomFaults emitted FaultNone")
		}
	}
}
