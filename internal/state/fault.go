package state

import (
	"fmt"
	"math/rand"
	"sync"
	"syscall"
	"time"
)

// FaultStore wraps a Store with scripted disk-fault injection, the
// state-layer sibling of cluster.ChaosSchedule: every fault fires at a
// fixed offset of the store's per-operation counters, so a given
// script (or RandomFaults seed) replays the identical fault sequence.
// It exists to prove that everything riding the filesystem state store
// — checkpoints, rescale migration, window-state spill — degrades
// instead of crashing when the disk misbehaves.
//
// Supported fault kinds:
//
//	FaultENOSPC      Save fails with ENOSPC; nothing is written.
//	FaultTornWrite   Save persists only a prefix of the data and
//	                 reports success — the silent-corruption case a
//	                 CRC-verified read must catch.
//	FaultShortWrite  Save persists a prefix and reports an error.
//	FaultReadCorrupt Load returns the stored bytes with a byte
//	                 flipped — at-rest corruption.
//	FaultReadErr     Load fails with EIO.
//	FaultLatency     the operation sleeps Latency first, then
//	                 proceeds normally.
//
// FaultStore is safe for concurrent use when the wrapped store is.
type FaultStore struct {
	inner Store

	mu       sync.Mutex
	events   []FaultEvent
	saves    int
	loads    int
	injected int
}

// FaultKind enumerates the injectable disk faults.
type FaultKind int

const (
	// FaultNone is the zero value; events with it are ignored.
	FaultNone FaultKind = iota
	// FaultENOSPC makes Save fail with syscall.ENOSPC without writing.
	FaultENOSPC
	// FaultTornWrite makes Save persist a truncated prefix and return
	// success — the write looked committed but the tail is gone.
	FaultTornWrite
	// FaultShortWrite makes Save persist a truncated prefix and return
	// an error.
	FaultShortWrite
	// FaultReadCorrupt makes Load return the data with a flipped byte.
	FaultReadCorrupt
	// FaultReadErr makes Load fail with syscall.EIO.
	FaultReadErr
	// FaultLatency delays the operation by Latency, then lets it
	// proceed untouched.
	FaultLatency
)

// String names the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultENOSPC:
		return "enospc"
	case FaultTornWrite:
		return "torn-write"
	case FaultShortWrite:
		return "short-write"
	case FaultReadCorrupt:
		return "read-corrupt"
	case FaultReadErr:
		return "read-err"
	case FaultLatency:
		return "latency"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent schedules one fault: it fires on save/load operations
// numbered [After, After+Count) of the matching kind's counter
// (0-based; Count <= 0 means 1). Write faults key off the save
// counter, read faults off the load counter; FaultLatency keys off
// whichever operation it matches by counter kind (writes).
type FaultEvent struct {
	Kind    FaultKind
	After   int           // operation index the fault starts firing at
	Count   int           // consecutive operations affected (default 1)
	Latency time.Duration // FaultLatency only
}

// isWrite reports whether the event's kind targets Save.
func (e FaultEvent) isWrite() bool {
	switch e.Kind {
	case FaultENOSPC, FaultTornWrite, FaultShortWrite, FaultLatency:
		return true
	}
	return false
}

// matches reports whether the event fires at the given op index.
func (e FaultEvent) matches(op int) bool {
	n := e.Count
	if n <= 0 {
		n = 1
	}
	return op >= e.After && op < e.After+n
}

// NewFaultStore wraps inner with the given fault script.
func NewFaultStore(inner Store, events []FaultEvent) *FaultStore {
	return &FaultStore{inner: inner, events: append([]FaultEvent(nil), events...)}
}

// RandomFaults derives a reproducible fault script from a seed: n
// events spread over the first ~4n operations of each kind, mixing
// write and read faults. The same seed always yields the same script.
func RandomFaults(seed int64, n int) []FaultEvent {
	rng := rand.New(rand.NewSource(seed))
	kinds := []FaultKind{FaultENOSPC, FaultTornWrite, FaultShortWrite, FaultReadCorrupt, FaultReadErr, FaultLatency}
	out := make([]FaultEvent, 0, n)
	for i := 0; i < n; i++ {
		e := FaultEvent{
			Kind:  kinds[rng.Intn(len(kinds))],
			After: rng.Intn(4*n + 1),
			Count: 1 + rng.Intn(2),
		}
		if e.Kind == FaultLatency {
			e.Latency = time.Duration(1+rng.Intn(3)) * time.Millisecond
		}
		out = append(out, e)
	}
	return out
}

// Injected reports how many operations a fault fired on.
func (fs *FaultStore) Injected() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.injected
}

// Ops reports the save and load operation counts observed so far.
func (fs *FaultStore) Ops() (saves, loads int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.saves, fs.loads
}

// nextFault advances the matching op counter and returns the fault (if
// any) scheduled for this operation.
func (fs *FaultStore) nextFault(write bool) (FaultEvent, bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var op int
	if write {
		op = fs.saves
		fs.saves++
	} else {
		op = fs.loads
		fs.loads++
	}
	for _, e := range fs.events {
		if e.Kind == FaultNone || e.isWrite() != write {
			continue
		}
		if e.matches(op) {
			fs.injected++
			return e, true
		}
	}
	return FaultEvent{}, false
}

// Save implements Store with write-fault injection.
func (fs *FaultStore) Save(task string, window int, data []byte) error {
	e, fire := fs.nextFault(true)
	if !fire {
		return fs.inner.Save(task, window, data)
	}
	switch e.Kind {
	case FaultENOSPC:
		return fmt.Errorf("state: fault injection: save %s window %d: %w", task, window, syscall.ENOSPC)
	case FaultTornWrite:
		return fs.inner.Save(task, window, data[:len(data)/2])
	case FaultShortWrite:
		if err := fs.inner.Save(task, window, data[:len(data)/2]); err != nil {
			return err
		}
		return fmt.Errorf("state: fault injection: save %s window %d: short write: %w", task, window, syscall.EIO)
	case FaultLatency:
		time.Sleep(e.Latency)
	}
	return fs.inner.Save(task, window, data)
}

// Load implements Store with read-fault injection.
func (fs *FaultStore) Load(task string, window int) ([]byte, error) {
	e, fire := fs.nextFault(false)
	if !fire {
		return fs.inner.Load(task, window)
	}
	switch e.Kind {
	case FaultReadErr:
		return nil, fmt.Errorf("state: fault injection: load %s window %d: %w", task, window, syscall.EIO)
	case FaultReadCorrupt:
		data, err := fs.inner.Load(task, window)
		if err != nil {
			return nil, err
		}
		if len(data) > 0 {
			data[len(data)/2] ^= 0xff
		}
		return data, nil
	}
	return fs.inner.Load(task, window)
}

// MaxWindow implements Store.
func (fs *FaultStore) MaxWindow(task string) (int, bool) { return fs.inner.MaxWindow(task) }

// Windows implements Store.
func (fs *FaultStore) Windows(task string) []int { return fs.inner.Windows(task) }

// Tasks implements Store.
func (fs *FaultStore) Tasks() []string { return fs.inner.Tasks() }

// Prune implements Store.
func (fs *FaultStore) Prune(task string, above int) error { return fs.inner.Prune(task, above) }

// Remove implements Store.
func (fs *FaultStore) Remove(task string, window int) error { return fs.inner.Remove(task, window) }
