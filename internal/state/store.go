package state

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Store is the checkpoint repository a recovering run restores from.
// Snapshots are keyed by (task, window): one entry per task per
// completed window, so a global recovery cut can pick the highest
// window every required task has reached. Implementations must be
// safe for concurrent use — tasks checkpoint independently.
type Store interface {
	// Save records task's snapshot for the given completed window,
	// replacing any previous entry for the same key.
	Save(task string, window int, data []byte) error
	// Load returns the snapshot saved for (task, window).
	Load(task string, window int) ([]byte, error)
	// MaxWindow reports the highest window task has a snapshot for;
	// ok is false when the task has none.
	MaxWindow(task string) (window int, ok bool)
	// Windows lists the windows task has snapshots for, ascending.
	Windows(task string) []int
	// Tasks lists every task with at least one snapshot, sorted.
	Tasks() []string
	// Prune drops task's snapshots for windows strictly above the
	// given window. Recovery prunes every task above the chosen cut
	// before restarting, so snapshots taken by the failed attempt can
	// never mix with the new attempt's lineage at a later cut.
	Prune(task string, above int) error
	// Remove drops the single snapshot for (task, window), if present.
	// The spill path uses it to retire a pane's spill file when the
	// pane slides out of the window; removing a missing entry is not an
	// error.
	Remove(task string, window int) error
}

// Cut computes the aligned recovery cut: the highest window every
// required task has a snapshot for — the maximum of the intersection
// of the tasks' snapshot sets, not the minimum of their maxima,
// because tasks may checkpoint windows slightly out of order (the
// merger resolves a non-computing round while an older computation
// round still awaits its groups). It returns -1 when the intersection
// is empty — recovery then has no consistent state to restore.
func Cut(s Store, required []string) int {
	if len(required) == 0 {
		return -1
	}
	common := make(map[int]int)
	for _, task := range required {
		for _, w := range s.Windows(task) {
			common[w]++
		}
	}
	cut := -1
	for w, n := range common {
		if n == len(required) && w > cut {
			cut = w
		}
	}
	return cut
}

// MemStore is an in-memory Store — the default for single-process
// clusters, where workers share the process address space.
type MemStore struct {
	mu    sync.Mutex
	tasks map[string]map[int][]byte
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{tasks: make(map[string]map[int][]byte)}
}

// Save implements Store.
func (m *MemStore) Save(task string, window int, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	byWin := m.tasks[task]
	if byWin == nil {
		byWin = make(map[int][]byte)
		m.tasks[task] = byWin
	}
	byWin[window] = append([]byte(nil), data...)
	return nil
}

// Load implements Store.
func (m *MemStore) Load(task string, window int) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.tasks[task][window]
	if !ok {
		return nil, fmt.Errorf("state: no snapshot for %s window %d", task, window)
	}
	return append([]byte(nil), data...), nil
}

// MaxWindow implements Store.
func (m *MemStore) MaxWindow(task string) (int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	max, ok := -1, false
	for w := range m.tasks[task] {
		if !ok || w > max {
			max, ok = w, true
		}
	}
	return max, ok
}

// Windows implements Store.
func (m *MemStore) Windows(task string) []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.tasks[task]))
	for w := range m.tasks[task] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Tasks implements Store.
func (m *MemStore) Tasks() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tasks))
	for t := range m.tasks {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Prune implements Store.
func (m *MemStore) Prune(task string, above int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for w := range m.tasks[task] {
		if w > above {
			delete(m.tasks[task], w)
		}
	}
	return nil
}

// Remove implements Store.
func (m *MemStore) Remove(task string, window int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.tasks[task], window)
	return nil
}

// FSStore is a filesystem Store: one file per (task, window) under a
// root directory, written atomically (temp file + rename) so a crash
// mid-checkpoint never leaves a torn snapshot behind. Task names may
// contain '/' (e.g. "assigner/3"); they map to a flat directory name.
type FSStore struct {
	dir string
	mu  sync.Mutex
}

// NewFSStore creates (if needed) the root directory and returns the
// store. Opening also sweeps orphaned temp files (".ckpt-*" — the
// in-flight writes of a process that was killed before its rename):
// they are never part of any snapshot listing and would otherwise
// accumulate forever.
func NewFSStore(dir string) (*FSStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("state: fs store: %w", err)
	}
	f := &FSStore{dir: dir}
	f.removeOrphanedTemps()
	return f, nil
}

// removeOrphanedTemps deletes stray ".ckpt-*" temp files in every task
// directory. Only exact temp-pattern names are touched: foreign files
// an operator drops into the tree are left alone.
func (f *FSStore) removeOrphanedTemps() {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		taskDir := filepath.Join(f.dir, e.Name())
		files, err := os.ReadDir(taskDir)
		if err != nil {
			continue
		}
		for _, file := range files {
			if name := file.Name(); strings.HasPrefix(name, ".ckpt-") && !file.IsDir() {
				os.Remove(filepath.Join(taskDir, name))
			}
		}
	}
}

func (f *FSStore) taskDir(task string) string {
	return filepath.Join(f.dir, strings.ReplaceAll(task, "/", "@"))
}

func (f *FSStore) path(task string, window int) string {
	return filepath.Join(f.taskDir(task), fmt.Sprintf("%08d.ckpt", window))
}

// Save implements Store. The write is crash-durable, not merely
// atomic: the temp file is fsynced before the rename (otherwise a
// power cut can make the rename visible while the data blocks were
// never written, leaving a zero-length "committed" snapshot), and the
// directory is fsynced after it (otherwise the rename itself may not
// survive the crash).
func (f *FSStore) Save(task string, window int, data []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	dir := f.taskDir(task)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("state: fs store save: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return fmt.Errorf("state: fs store save: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("state: fs store save: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("state: fs store save: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("state: fs store save: %w", err)
	}
	if err := os.Rename(tmp.Name(), f.path(task, window)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("state: fs store save: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("state: fs store save: sync dir: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-performed rename survives a
// crash. Some filesystems (and some OSes) reject fsync on directories;
// such errors are ignored — the rename is still atomic, durability is
// then the platform's best effort.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// Load implements Store.
func (f *FSStore) Load(task string, window int) ([]byte, error) {
	data, err := os.ReadFile(f.path(task, window))
	if err != nil {
		return nil, fmt.Errorf("state: no snapshot for %s window %d: %w", task, window, err)
	}
	return data, nil
}

// MaxWindow implements Store.
func (f *FSStore) MaxWindow(task string) (int, bool) {
	wins := f.windows(task)
	if len(wins) == 0 {
		return -1, false
	}
	return wins[len(wins)-1], true
}

// Windows implements Store.
func (f *FSStore) Windows(task string) []int { return f.windows(task) }

func (f *FSStore) windows(task string) []int {
	ents, err := os.ReadDir(f.taskDir(task))
	if err != nil {
		return nil
	}
	var out []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".ckpt") || strings.HasPrefix(name, ".") {
			continue
		}
		w, err := strconv.Atoi(strings.TrimSuffix(name, ".ckpt"))
		if err != nil {
			continue
		}
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Tasks implements Store.
func (f *FSStore) Tasks() []string {
	ents, err := os.ReadDir(f.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		if e.IsDir() {
			out = append(out, strings.ReplaceAll(e.Name(), "@", "/"))
		}
	}
	sort.Strings(out)
	return out
}

// Prune implements Store.
func (f *FSStore) Prune(task string, above int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, w := range f.windows(task) {
		if w > above {
			if err := os.Remove(f.path(task, w)); err != nil {
				return fmt.Errorf("state: fs store prune: %w", err)
			}
		}
	}
	return nil
}

// Remove implements Store.
func (f *FSStore) Remove(task string, window int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := os.Remove(f.path(task, window)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("state: fs store remove: %w", err)
	}
	return nil
}
