package state

import (
	"bytes"
	"io"
	"testing"
)

// blob is a trivial Snapshotter for exercising the envelope helpers.
type blob struct{ data []byte }

func (b *blob) Snapshot(w io.Writer) error {
	_, err := w.Write(b.data)
	return err
}
func (b *blob) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	b.data = data
	return err
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "test", payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadEnvelope(bytes.NewReader(buf.Bytes()), "test")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
}

func TestEnvelopeRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "fptree", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEnvelope(bytes.NewReader(buf.Bytes()), "assigner"); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "test", []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xff
	if _, err := ReadEnvelope(bytes.NewReader(bad), "test"); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Break the magic.
	bad = append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := ReadEnvelope(bytes.NewReader(bad), "test"); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Unknown version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadEnvelope(bytes.NewReader(bad), "test"); err == nil {
		t.Fatal("unknown version accepted")
	}

	// Truncation.
	if _, err := ReadEnvelope(bytes.NewReader(raw[:len(raw)-2]), "test"); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}

func TestEncodeDecode(t *testing.T) {
	src := &blob{data: []byte("state bytes")}
	enc, err := Encode("blob", src)
	if err != nil {
		t.Fatal(err)
	}
	dst := &blob{}
	if err := Decode("blob", enc, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.data, src.data) {
		t.Fatalf("restore mismatch: %q != %q", dst.data, src.data)
	}
	if err := Decode("other", enc, dst); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func testStore(t *testing.T, s Store) {
	t.Helper()
	if _, ok := s.MaxWindow("a"); ok {
		t.Fatal("empty store reported a window")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Save("a/0", 0, []byte("a0w0")))
	must(s.Save("a/0", 1, []byte("a0w1")))
	must(s.Save("b/1", 0, []byte("b1w0")))

	if got, err := s.Load("a/0", 1); err != nil || string(got) != "a0w1" {
		t.Fatalf("load a/0@1 = %q, %v", got, err)
	}
	if _, err := s.Load("a/0", 7); err == nil {
		t.Fatal("missing window loaded")
	}
	if w, ok := s.MaxWindow("a/0"); !ok || w != 1 {
		t.Fatalf("MaxWindow(a/0) = %d, %v", w, ok)
	}
	tasks := s.Tasks()
	if len(tasks) != 2 || tasks[0] != "a/0" || tasks[1] != "b/1" {
		t.Fatalf("Tasks() = %v", tasks)
	}

	// Overwrite is replace, not append.
	must(s.Save("a/0", 1, []byte("a0w1'")))
	if got, _ := s.Load("a/0", 1); string(got) != "a0w1'" {
		t.Fatalf("overwrite: %q", got)
	}

	if got := s.Windows("a/0"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Windows(a/0) = %v", got)
	}

	must(s.Prune("a/0", 0))
	if _, err := s.Load("a/0", 1); err == nil {
		t.Fatal("pruned window still loads")
	}
	if got, _ := s.Load("a/0", 0); string(got) != "a0w0" {
		t.Fatal("prune removed a window at or below the cut")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFSStore(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

func TestCut(t *testing.T) {
	s := NewMemStore()
	if c := Cut(s, []string{"a", "b"}); c != -1 {
		t.Fatalf("empty cut = %d", c)
	}
	s.Save("a", 0, nil)
	s.Save("a", 1, nil)
	s.Save("a", 2, nil)
	s.Save("b", 0, nil)
	s.Save("b", 1, nil)
	if c := Cut(s, []string{"a", "b"}); c != 1 {
		t.Fatalf("cut = %d, want 1", c)
	}
	if c := Cut(s, []string{"a", "b", "c"}); c != -1 {
		t.Fatalf("cut with missing task = %d, want -1", c)
	}
	// A task that skipped a window (out-of-order checkpointing) caps
	// the cut at the highest window in the intersection, not at the
	// minimum of maxima.
	s.Save("b", 3, nil)
	if c := Cut(s, []string{"a", "b"}); c != 1 {
		t.Fatalf("cut with gap = %d, want 1", c)
	}
}
