package state

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// blob is a trivial Snapshotter for exercising the envelope helpers.
type blob struct{ data []byte }

func (b *blob) Snapshot(w io.Writer) error {
	_, err := w.Write(b.data)
	return err
}
func (b *blob) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	b.data = data
	return err
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("the quick brown fox")
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "test", payload); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadEnvelope(bytes.NewReader(buf.Bytes()), "test")
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q != %q", got, payload)
	}
}

func TestEnvelopeRejectsWrongKind(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "fptree", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadEnvelope(bytes.NewReader(buf.Bytes()), "assigner"); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestEnvelopeRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "test", []byte("payload-bytes")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), raw...)
	bad[len(bad)-6] ^= 0xff
	if _, err := ReadEnvelope(bytes.NewReader(bad), "test"); err == nil {
		t.Fatal("corrupted payload accepted")
	}

	// Break the magic.
	bad = append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := ReadEnvelope(bytes.NewReader(bad), "test"); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Unknown version.
	bad = append([]byte(nil), raw...)
	bad[4] = 99
	if _, err := ReadEnvelope(bytes.NewReader(bad), "test"); err == nil {
		t.Fatal("unknown version accepted")
	}

	// Truncation.
	if _, err := ReadEnvelope(bytes.NewReader(raw[:len(raw)-2]), "test"); err == nil {
		t.Fatal("truncated envelope accepted")
	}
}

func TestEncodeDecode(t *testing.T) {
	src := &blob{data: []byte("state bytes")}
	enc, err := Encode("blob", src)
	if err != nil {
		t.Fatal(err)
	}
	dst := &blob{}
	if err := Decode("blob", enc, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst.data, src.data) {
		t.Fatalf("restore mismatch: %q != %q", dst.data, src.data)
	}
	if err := Decode("other", enc, dst); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func testStore(t *testing.T, s Store) {
	t.Helper()
	if _, ok := s.MaxWindow("a"); ok {
		t.Fatal("empty store reported a window")
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.Save("a/0", 0, []byte("a0w0")))
	must(s.Save("a/0", 1, []byte("a0w1")))
	must(s.Save("b/1", 0, []byte("b1w0")))

	if got, err := s.Load("a/0", 1); err != nil || string(got) != "a0w1" {
		t.Fatalf("load a/0@1 = %q, %v", got, err)
	}
	if _, err := s.Load("a/0", 7); err == nil {
		t.Fatal("missing window loaded")
	}
	if w, ok := s.MaxWindow("a/0"); !ok || w != 1 {
		t.Fatalf("MaxWindow(a/0) = %d, %v", w, ok)
	}
	tasks := s.Tasks()
	if len(tasks) != 2 || tasks[0] != "a/0" || tasks[1] != "b/1" {
		t.Fatalf("Tasks() = %v", tasks)
	}

	// Overwrite is replace, not append.
	must(s.Save("a/0", 1, []byte("a0w1'")))
	if got, _ := s.Load("a/0", 1); string(got) != "a0w1'" {
		t.Fatalf("overwrite: %q", got)
	}

	if got := s.Windows("a/0"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Windows(a/0) = %v", got)
	}

	must(s.Prune("a/0", 0))
	if _, err := s.Load("a/0", 1); err == nil {
		t.Fatal("pruned window still loads")
	}
	if got, _ := s.Load("a/0", 0); string(got) != "a0w0" {
		t.Fatal("prune removed a window at or below the cut")
	}

	// Remove drops exactly one entry; removing it again (or an entry
	// that never existed) is not an error.
	must(s.Save("a/0", 5, []byte("a0w5")))
	must(s.Remove("a/0", 5))
	if _, err := s.Load("a/0", 5); err == nil {
		t.Fatal("removed window still loads")
	}
	must(s.Remove("a/0", 5))
	must(s.Remove("never-saved", 0))
	if got, _ := s.Load("a/0", 0); string(got) != "a0w0" {
		t.Fatal("remove touched a different window")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFSStore(t *testing.T) {
	s, err := NewFSStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

// Callers reuse snapshot buffers between checkpoints; the store must
// copy on Save, not alias, or the next snapshot silently rewrites the
// previous one in place.
func TestMemStoreSaveCopies(t *testing.T) {
	s := NewMemStore()
	buf := []byte("window-0-state")
	if err := s.Save("t", 0, buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, []byte("XXXXXX"))
	got, err := s.Load("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "window-0-state" {
		t.Fatalf("stored snapshot mutated through caller's buffer: %q", got)
	}
	// And Load must hand back a copy too: scribbling on a loaded
	// snapshot must not reach the stored bytes.
	got[0] ^= 0xff
	again, _ := s.Load("t", 0)
	if string(again) != "window-0-state" {
		t.Fatalf("stored snapshot mutated through loaded slice: %q", again)
	}
}

// FSStore's directory scans must ignore foreign files — operator notes,
// stray temps from killed processes, nested directories — and opening a
// store sweeps orphaned ".ckpt-*" temps while leaving everything else.
func TestFSStoreForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		if err := s.Save("task", w, []byte{byte(w)}); err != nil {
			t.Fatal(err)
		}
	}
	taskDir := filepath.Join(dir, "task")
	foreign := []string{"README.txt", "notes.ckpt.bak", "12.snapshot", "zzzz.ckpt"}
	for _, name := range foreign {
		if err := os.WriteFile(filepath.Join(taskDir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	orphan := filepath.Join(taskDir, ".ckpt-1234567")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	if got := s.Windows("task"); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Windows with foreign files = %v", got)
	}
	if w, ok := s.MaxWindow("task"); !ok || w != 2 {
		t.Fatalf("MaxWindow with foreign files = %d, %v", w, ok)
	}
	if err := s.Prune("task", 0); err != nil {
		t.Fatalf("prune with foreign files: %v", err)
	}
	if got := s.Windows("task"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Windows after prune = %v", got)
	}
	if c := Cut(s, []string{"task"}); c != 0 {
		t.Fatalf("Cut with foreign files = %d", c)
	}
	for _, name := range foreign {
		if _, err := os.Stat(filepath.Join(taskDir, name)); err != nil {
			t.Fatalf("foreign file %s disturbed: %v", name, err)
		}
	}

	// Reopening sweeps the orphaned temp but nothing else.
	if _, err := NewFSStore(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("orphaned temp survived reopen: %v", err)
	}
	for _, name := range foreign {
		if _, err := os.Stat(filepath.Join(taskDir, name)); err != nil {
			t.Fatalf("reopen disturbed foreign file %s: %v", name, err)
		}
	}
}

// A snapshot saved through one FSStore must read back intact through a
// fresh store over the same directory — the durability contract the
// fsync-before-rename path exists for — and its envelope CRC must
// still verify.
func TestFSStoreReopenDurability(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	src := &blob{data: []byte("joiner window state, checksummed")}
	enc, err := Encode("joiner", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("joiner/0", 4, enc); err != nil {
		t.Fatal(err)
	}

	reopened, err := NewFSStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	data, err := reopened.Load("joiner/0", 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := &blob{}
	if err := Decode("joiner", data, dst); err != nil {
		t.Fatalf("envelope CRC failed after reopen: %v", err)
	}
	if !bytes.Equal(dst.data, src.data) {
		t.Fatalf("restore mismatch after reopen: %q", dst.data)
	}
	if w, ok := reopened.MaxWindow("joiner/0"); !ok || w != 4 {
		t.Fatalf("MaxWindow after reopen = %d, %v", w, ok)
	}
}

func TestCut(t *testing.T) {
	s := NewMemStore()
	if c := Cut(s, []string{"a", "b"}); c != -1 {
		t.Fatalf("empty cut = %d", c)
	}
	s.Save("a", 0, nil)
	s.Save("a", 1, nil)
	s.Save("a", 2, nil)
	s.Save("b", 0, nil)
	s.Save("b", 1, nil)
	if c := Cut(s, []string{"a", "b"}); c != 1 {
		t.Fatalf("cut = %d, want 1", c)
	}
	if c := Cut(s, []string{"a", "b", "c"}); c != -1 {
		t.Fatalf("cut with missing task = %d, want -1", c)
	}
	// A task that skipped a window (out-of-order checkpointing) caps
	// the cut at the highest window in the intersection, not at the
	// minimum of maxima.
	s.Save("b", 3, nil)
	if c := Cut(s, []string{"a", "b"}); c != 1 {
		t.Fatalf("cut with gap = %d, want 1", c)
	}
}
