// Package expansion implements the attribute-value expansion of the
// paper's Section VI-B: attributes with few unique values that occur in
// every document (e.g. Booleans) cap the number of useful partitions,
// so their values are concatenated with the values of further
// attributes until the synthetic attribute has enough distinct values
// for the required number of partitions.
//
// Correctness note. Replacing the component pairs by one synthetic pair
// preserves the join-completeness of the routing: any two joinable
// documents that both carry every component attribute must agree on all
// of them (a disagreement would be a natural-join conflict), hence they
// produce the same synthetic value and meet in the same partition; a
// document missing a component attribute cannot build the synthetic
// value and is broadcast to all machines, exactly as the paper
// prescribes ("such documents will be emitted to all machines"). The
// expected extra replication is pna·m, where pna is the fraction of
// documents lacking a component attribute.
package expansion

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/document"
)

// Expansion describes one synthetic attribute: the ordered component
// attributes (the disabling attribute first, then the combining
// attributes) whose values are concatenated.
type Expansion struct {
	// Components holds the attribute names in concatenation order.
	Components []string
	// SyntheticAttr is the name of the generated attribute.
	SyntheticAttr string
	// DistinctValues is the number of distinct synthetic values
	// observed in the analysis batch.
	DistinctValues int
	// MissingFraction is the fraction of analysis documents lacking at
	// least one component attribute (pna in the paper's estimate).
	MissingFraction float64
}

// Analyze decides whether expansion is needed for the batch and, if so,
// constructs it. It returns nil when no disabling attribute exists —
// i.e. no attribute that appears in every document has fewer unique
// values than the required number of partitions m.
func Analyze(docs []document.Document, m int) *Expansion {
	if len(docs) == 0 || m <= 1 {
		return nil
	}
	stats := document.CollectAttrStats(docs)

	// The disabling attribute: present in all documents, fewer than m
	// unique values; among candidates pick the fewest distinct values
	// (the most limiting), ties lexicographic.
	disabling := ""
	for _, a := range stats.Ubiquitous() {
		if stats.Distinct[a] >= m {
			continue
		}
		if disabling == "" ||
			stats.Distinct[a] < stats.Distinct[disabling] ||
			(stats.Distinct[a] == stats.Distinct[disabling] && a < disabling) {
			disabling = a
		}
	}
	if disabling == "" {
		return nil
	}

	components := []string{disabling}
	for {
		distinct, missing := syntheticStats(docs, components)
		if distinct >= m {
			return build(components, distinct, missing, len(docs))
		}
		next := nextCombining(stats, components)
		if next == "" {
			// No further attribute available; return the best
			// expansion achievable.
			return build(components, distinct, missing, len(docs))
		}
		components = append(components, next)
	}
}

// AnalyzeForced is Analyze with the ubiquity requirement on the
// disabling attribute relaxed to "the most frequent attribute with
// fewer than m unique values". The paper forces expansion for the DS
// competitor on the real-world dataset, whose limiting attribute need
// not be strictly ubiquitous in every sample. Routing completeness is
// unaffected: documents missing any component attribute are broadcast.
func AnalyzeForced(docs []document.Document, m int) *Expansion {
	if e := Analyze(docs, m); e != nil {
		return e
	}
	if len(docs) == 0 || m <= 1 {
		return nil
	}
	stats := document.CollectAttrStats(docs)
	disabling := ""
	for a, distinct := range stats.Distinct {
		if distinct >= m {
			continue
		}
		if disabling == "" ||
			stats.DocCount[a] > stats.DocCount[disabling] ||
			(stats.DocCount[a] == stats.DocCount[disabling] && a < disabling) {
			disabling = a
		}
	}
	if disabling == "" {
		return nil
	}
	components := []string{disabling}
	for {
		distinct, missing := syntheticStats(docs, components)
		if distinct >= m {
			return build(components, distinct, missing, len(docs))
		}
		next := nextCombining(stats, components)
		if next == "" {
			return build(components, distinct, missing, len(docs))
		}
		components = append(components, next)
	}
}

func build(components []string, distinct, missing, total int) *Expansion {
	return &Expansion{
		Components:      components,
		SyntheticAttr:   syntheticAttrName(components),
		DistinctValues:  distinct,
		MissingFraction: float64(missing) / float64(total),
	}
}

// nextCombining picks the combining attribute: the attribute, not yet a
// component, that appears in the most documents, with ties broken by
// the smallest number of unique values, then lexicographically.
func nextCombining(stats *document.AttrStats, components []string) string {
	used := make(map[string]bool, len(components))
	for _, c := range components {
		used[c] = true
	}
	var candidates []string
	for a := range stats.DocCount {
		if !used[a] {
			candidates = append(candidates, a)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	sort.Slice(candidates, func(i, j int) bool {
		ai, aj := candidates[i], candidates[j]
		if stats.DocCount[ai] != stats.DocCount[aj] {
			return stats.DocCount[ai] > stats.DocCount[aj]
		}
		if stats.Distinct[ai] != stats.Distinct[aj] {
			return stats.Distinct[ai] < stats.Distinct[aj]
		}
		return ai < aj
	})
	return candidates[0]
}

// syntheticStats counts distinct synthetic values and documents unable
// to build one.
func syntheticStats(docs []document.Document, components []string) (distinct, missing int) {
	values := make(map[string]struct{})
	for _, d := range docs {
		v, ok := syntheticValue(d, components)
		if !ok {
			missing++
			continue
		}
		values[v] = struct{}{}
	}
	return len(values), missing
}

func syntheticValue(d document.Document, components []string) (string, bool) {
	parts := make([]string, 0, len(components))
	for _, a := range components {
		v, ok := d.Get(a)
		if !ok {
			return "", false
		}
		parts = append(parts, v)
	}
	acc := parts[0]
	for _, p := range parts[1:] {
		acc = document.ConcatValues(acc, p)
	}
	return acc, true
}

func syntheticAttrName(components []string) string {
	acc := components[0]
	for _, c := range components[1:] {
		acc = document.ConcatAttrs(acc, c)
	}
	return acc
}

// Apply transforms a document for partitioning purposes: the component
// pairs are replaced by the single synthetic pair. ok=false means the
// document lacks a component attribute, cannot form the synthetic value
// and must be broadcast to all machines.
//
// The transformation is only used for routing; Joiners always operate
// on the original documents.
func (e *Expansion) Apply(d document.Document) (document.Document, bool) {
	if e == nil {
		return d, true
	}
	v, ok := syntheticValue(d, e.Components)
	if !ok {
		return d, false
	}
	comp := make(map[string]bool, len(e.Components))
	for _, c := range e.Components {
		comp[c] = true
	}
	pairs := make([]document.Pair, 0, d.Len())
	for _, p := range d.Pairs() {
		if !comp[p.Attr] {
			pairs = append(pairs, p)
		}
	}
	pairs = append(pairs, document.Pair{Attr: e.SyntheticAttr, Val: v})
	return document.New(d.ID, pairs), true
}

// ApplyBatch transforms a whole batch, dropping the documents that
// cannot form the synthetic value (they are broadcast and need no
// partition).
func (e *Expansion) ApplyBatch(docs []document.Document) []document.Document {
	if e == nil {
		return docs
	}
	out := make([]document.Document, 0, len(docs))
	for _, d := range docs {
		if t, ok := e.Apply(d); ok {
			out = append(out, t)
		}
	}
	return out
}

// ExpectedReplication is the paper's estimate pna·m for the replication
// the expansion adds through broadcast documents, plus the single copy
// each remaining document contributes.
func (e *Expansion) ExpectedReplication(m int) float64 {
	if e == nil {
		return 1
	}
	return e.MissingFraction*float64(m) + (1 - e.MissingFraction)
}

// String renders the expansion for logs.
func (e *Expansion) String() string {
	if e == nil {
		return "expansion(none)"
	}
	return fmt.Sprintf("expansion(%s distinct=%d missing=%.2f)",
		strings.Join(e.Components, "+"), e.DistinctValues, e.MissingFraction)
}
