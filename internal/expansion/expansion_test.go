package expansion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/document"
	"repro/internal/partition"
)

// boolDocs builds the motivating scenario of Sec. VI-B: a Boolean
// attribute in every document plus a higher-variety user attribute.
func boolDocs(n int) []document.Document {
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, document.New(uint64(i+1), []document.Pair{
			{Attr: "bool", Val: document.EncodeBool(i%2 == 0)},
			{Attr: "user", Val: document.EncodeString(string(rune('A' + i%8)))},
			{Attr: "x", Val: document.EncodeInt(int64(i))},
		}))
	}
	return docs
}

func TestAnalyzeFindsBooleanDisabler(t *testing.T) {
	e := Analyze(boolDocs(32), 8)
	if e == nil {
		t.Fatal("expected an expansion")
	}
	if e.Components[0] != "bool" {
		t.Errorf("disabling attribute = %s, want bool", e.Components[0])
	}
	if e.DistinctValues < 8 {
		t.Errorf("DistinctValues = %d, want >= 8", e.DistinctValues)
	}
}

func TestAnalyzeNoDisablerNeeded(t *testing.T) {
	// Every ubiquitous attribute already has >= m values.
	var docs []document.Document
	for i := 0; i < 20; i++ {
		docs = append(docs, document.New(uint64(i+1), []document.Pair{
			{Attr: "id", Val: document.EncodeInt(int64(i))},
		}))
	}
	if e := Analyze(docs, 4); e != nil {
		t.Errorf("unexpected expansion %v", e)
	}
}

func TestAnalyzeEmptyAndTrivial(t *testing.T) {
	if Analyze(nil, 8) != nil {
		t.Error("nil docs must yield nil expansion")
	}
	if Analyze(boolDocs(8), 1) != nil {
		t.Error("m=1 needs no expansion")
	}
}

func TestApplyReplacesComponents(t *testing.T) {
	docs := boolDocs(32)
	e := Analyze(docs, 8)
	if e == nil {
		t.Fatal("expected expansion")
	}
	out, ok := e.Apply(docs[0])
	if !ok {
		t.Fatal("Apply failed on complete document")
	}
	for _, c := range e.Components {
		if out.HasAttr(c) {
			t.Errorf("component %s not removed", c)
		}
	}
	if !out.HasAttr(e.SyntheticAttr) {
		t.Error("synthetic attribute missing")
	}
}

func TestApplyMissingComponent(t *testing.T) {
	docs := boolDocs(32)
	e := Analyze(docs, 8)
	d := document.MustParse(99, `{"bool":true}`) // lacks combining attrs
	if _, ok := e.Apply(d); ok {
		t.Error("Apply must fail when a component attribute is missing")
	}
}

func TestNilExpansionIsIdentity(t *testing.T) {
	var e *Expansion
	d := document.MustParse(1, `{"a":1}`)
	out, ok := e.Apply(d)
	if !ok || !out.Equal(d) {
		t.Error("nil expansion must be the identity")
	}
	if r := e.ExpectedReplication(8); r != 1 {
		t.Errorf("nil ExpectedReplication = %g", r)
	}
	if s := e.String(); s != "expansion(none)" {
		t.Errorf("String = %q", s)
	}
}

func TestExpectedReplication(t *testing.T) {
	e := &Expansion{MissingFraction: 0.25}
	// 0.25*8 + 0.75 = 2.75
	if got := e.ExpectedReplication(8); got != 2.75 {
		t.Errorf("ExpectedReplication = %g, want 2.75", got)
	}
}

// TestExpansionEnablesScaling verifies the headline claim: without
// expansion a Boolean-dominated batch yields at most 2 useful
// partitions; with expansion the partitioner fills all m machines.
func TestExpansionEnablesScaling(t *testing.T) {
	m := 8
	// Documents where the Boolean is the ONLY shared structure:
	// {bool, user} with 8 users per boolean value.
	var docs []document.Document
	for i := 0; i < 64; i++ {
		docs = append(docs, document.New(uint64(i+1), []document.Pair{
			{Attr: "bool", Val: document.EncodeBool(i%2 == 0)},
			{Attr: "user", Val: document.EncodeString(string(rune('A' + i%16)))},
		}))
	}
	// Without expansion, DS finds at most 2 components (everything is
	// connected through bool:true / bool:false).
	ds := partition.DisjointSets{}
	if c := ds.Components(docs); c > 2 {
		t.Fatalf("precondition failed: %d components", c)
	}
	// With expansion the transformed documents split into 16 synthetic
	// values, so all 8 partitions become non-empty.
	e := Analyze(docs, m)
	if e == nil {
		t.Fatal("expansion required")
	}
	transformed := e.ApplyBatch(docs)
	tbl := ds.Partition(transformed, m)
	if ne := tbl.NonEmpty(); ne != m {
		t.Errorf("non-empty partitions = %d, want %d", ne, m)
	}
}

// TestQuickExpansionPreservesCompleteness is the key safety property:
// routing transformed documents through partitions built on transformed
// documents (with broadcast for non-transformable ones) never separates
// a joinable pair of ORIGINAL documents.
func TestQuickExpansionPreservesCompleteness(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 2 + r.Intn(6)
		n := 5 + r.Intn(25)
		users := []string{"A", "B", "C", "D"}
		var docs []document.Document
		for i := 0; i < n; i++ {
			ps := []document.Pair{
				{Attr: "flag", Val: document.EncodeBool(r.Intn(2) == 0)},
			}
			if r.Intn(4) > 0 { // user sometimes missing
				ps = append(ps, document.Pair{Attr: "user", Val: document.EncodeString(users[r.Intn(len(users))])})
			}
			if r.Intn(2) == 0 {
				ps = append(ps, document.Pair{Attr: "x", Val: document.EncodeInt(int64(r.Intn(3)))})
			}
			docs = append(docs, document.New(uint64(i+1), ps))
		}
		e := Analyze(docs, m)
		tbl := partition.AssociationGroups{}.Partition(e.ApplyBatch(docs), m)

		// Route every original document under the expansion policy.
		route := func(d document.Document) []int {
			td, ok := e.Apply(d)
			if ok {
				if targets, broadcast := tbl.Route(td); !broadcast {
					return targets
				}
			}
			all := make([]int, m)
			for i := range all {
				all[i] = i
			}
			return all
		}
		targets := make([][]int, len(docs))
		for i, d := range docs {
			targets[i] = route(d)
		}
		for i := 0; i < len(docs); i++ {
			for j := i + 1; j < len(docs); j++ {
				if !document.Joinable(docs[i], docs[j]) {
					continue
				}
				if !sharesTarget(targets[i], targets[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func sharesTarget(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	for _, y := range b {
		if set[y] {
			return true
		}
	}
	return false
}

// TestQuickSyntheticAgreement: two joinable documents that both carry
// all component attributes always produce the same synthetic value.
func TestQuickSyntheticAgreement(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func(id uint64) document.Document {
			ps := []document.Pair{
				{Attr: "flag", Val: document.EncodeBool(r.Intn(2) == 0)},
				{Attr: "user", Val: document.EncodeString(string(rune('A' + r.Intn(3))))},
				{Attr: "z", Val: document.EncodeInt(int64(r.Intn(2)))},
			}
			return document.New(id, ps)
		}
		a, b := mk(1), mk(2)
		if !document.Joinable(a, b) {
			return true
		}
		e := &Expansion{Components: []string{"flag", "user"}, SyntheticAttr: "fu"}
		ta, okA := e.Apply(a)
		tb, okB := e.Apply(b)
		if !okA || !okB {
			return false
		}
		va, _ := ta.Get("fu")
		vb, _ := tb.Get("fu")
		return va == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestChainedExpansion(t *testing.T) {
	// bool alone has 2 values; bool+flag2 has 4; need m=6 -> chain to a
	// third attribute.
	var docs []document.Document
	for i := 0; i < 48; i++ {
		docs = append(docs, document.New(uint64(i+1), []document.Pair{
			{Attr: "b1", Val: document.EncodeBool(i%2 == 0)},
			{Attr: "b2", Val: document.EncodeBool(i%4 < 2)},
			{Attr: "u", Val: document.EncodeString(string(rune('A' + i%12)))},
		}))
	}
	e := Analyze(docs, 6)
	if e == nil {
		t.Fatal("expansion required")
	}
	if len(e.Components) < 2 {
		t.Errorf("expected chained components, got %v", e.Components)
	}
	if e.DistinctValues < 6 {
		t.Errorf("DistinctValues = %d, want >= 6", e.DistinctValues)
	}
}

func TestAnalyzeForcedRelaxesUbiquity(t *testing.T) {
	// Severity-like attribute in 90% of docs with 3 values: strict
	// Analyze finds nothing, forced analysis picks it.
	var docs []document.Document
	for i := 0; i < 100; i++ {
		ps := []document.Pair{
			{Attr: "id", Val: document.EncodeInt(int64(i))},
		}
		if i%10 != 0 {
			ps = append(ps, document.Pair{Attr: "sev", Val: document.EncodeString(string(rune('A' + i%3)))})
		}
		docs = append(docs, document.New(uint64(i+1), ps))
	}
	if Analyze(docs, 8) != nil {
		t.Fatal("strict analysis must find no disabling attribute")
	}
	e := AnalyzeForced(docs, 8)
	if e == nil {
		t.Fatal("forced analysis must produce an expansion")
	}
	if e.Components[0] != "sev" {
		t.Errorf("disabling = %s, want sev", e.Components[0])
	}
	if e.MissingFraction <= 0 {
		t.Errorf("MissingFraction = %g, want > 0 (10%% of docs lack sev)", e.MissingFraction)
	}
}

func TestAnalyzeForcedFallsBackToStrict(t *testing.T) {
	// When a strict disabling attribute exists, forced == strict.
	docs := boolDocs(32)
	strict := Analyze(docs, 8)
	forced := AnalyzeForced(docs, 8)
	if strict == nil || forced == nil {
		t.Fatal("both analyses must succeed")
	}
	if strict.SyntheticAttr != forced.SyntheticAttr {
		t.Errorf("forced diverged: %s vs %s", forced.SyntheticAttr, strict.SyntheticAttr)
	}
}

func TestAnalyzeForcedNoCandidate(t *testing.T) {
	// Every attribute has >= m values: nothing to force.
	var docs []document.Document
	for i := 0; i < 50; i++ {
		docs = append(docs, document.New(uint64(i+1), []document.Pair{
			{Attr: "id", Val: document.EncodeInt(int64(i))},
		}))
	}
	if e := AnalyzeForced(docs, 4); e != nil {
		t.Errorf("unexpected forced expansion %v", e)
	}
	if AnalyzeForced(nil, 4) != nil {
		t.Error("nil docs must yield nil")
	}
}
