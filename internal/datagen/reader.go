package datagen

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/document"
)

// ReaderSource adapts a JSON-lines stream (one JSON object per line,
// blank lines ignored) into a Generator, so the topology can consume
// external data — a file, a pipe, or another process — instead of the
// synthetic generators.
type ReaderSource struct {
	name    string
	scanner *bufio.Scanner
	nextID  uint64
	err     error
}

// NewReaderSource wraps r; name labels the dataset in reports.
func NewReaderSource(name string, r io.Reader) *ReaderSource {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &ReaderSource{name: name, scanner: sc, nextID: 1}
}

// Name implements Generator.
func (s *ReaderSource) Name() string { return s.name }

// Window implements Generator: it returns up to n documents; fewer (or
// none) when the stream is exhausted. Malformed lines stop the stream
// and are reported through Err.
func (s *ReaderSource) Window(n int) []document.Document {
	var docs []document.Document
	for len(docs) < n && s.err == nil && s.scanner.Scan() {
		line := s.scanner.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		d, err := document.Parse(s.nextID, line)
		if err != nil {
			s.err = fmt.Errorf("datagen: line for doc %d: %w", s.nextID, err)
			break
		}
		s.nextID++
		docs = append(docs, d)
	}
	if s.err == nil {
		s.err = s.scanner.Err()
	}
	return docs
}

// Err reports the first read or parse error, if any.
func (s *ReaderSource) Err() error { return s.err }

// Count reports how many documents have been produced.
func (s *ReaderSource) Count() uint64 { return s.nextID - 1 }

func trimSpace(b []byte) []byte {
	start, end := 0, len(b)
	for start < end && (b[start] == ' ' || b[start] == '\t' || b[start] == '\r') {
		start++
	}
	for end > start && (b[end-1] == ' ' || b[end-1] == '\t' || b[end-1] == '\r') {
		end--
	}
	return b[start:end]
}
