package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/document"
)

// NoBench re-implements the NoBench JSON data generator (Chasseur, Li &
// Patel, WebDB 2013) used for the paper's synthetic dataset. As in
// NoBench, every object carries the full core attribute cohort —
// str1, str2, bool, dyn1, dyn2, nested_obj.*, thousandth — plus a
// cohort of sparse attributes; the unique `num` attribute is removed,
// as the paper prescribes, so joins become possible.
//
// In NoBench all values are derived from the object's generation
// counter. This implementation derives them from a latent group id g:
// objects of the same group agree on every core attribute (they join),
// while objects of different groups conflict on str2 — under
// schema-free natural-join semantics a single conflicting shared
// attribute excludes the pair. Group ids mix draws from a bounded
// recency pool (values recur, so partitions stay useful and δ updates
// fire) with strictly fresh ids (every window carries documents with
// previously unseen attribute-value pairs — the behaviour behind
// nbData's ~50% repartition rate in the paper).
//
// The ubiquitous Boolean is the disabling attribute that forces
// attribute-value expansion (paper Sec. VI-B); the ubiquitous core
// cohort also gives the FP-tree its deep, hard-pruning shape (Sec. V-B).
type NoBench struct {
	rng    *rand.Rand
	nextID uint64

	nextGroup int64
	recent    []int64

	// FreshRate is the probability that a document starts a brand-new
	// group (unseen values for str2, nested_obj.num and its sparse
	// cohort). Defaults to 0.10.
	FreshRate float64
	// RecencyPool bounds how many recent groups keep recurring.
	RecencyPool int
}

// NewNoBench creates the nbData generator.
func NewNoBench(seed int64) *NoBench {
	return &NoBench{
		rng:         rand.New(rand.NewSource(seed)),
		nextID:      1,
		FreshRate:   0.10,
		RecencyPool: 400,
	}
}

// Name implements Generator.
func (g *NoBench) Name() string { return "nbData" }

// Window implements Generator.
func (g *NoBench) Window(n int) []document.Document {
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, g.next())
	}
	return docs
}

func (g *NoBench) next() document.Document {
	id := g.nextID
	g.nextID++
	r := g.rng

	grp := g.pickGroup()

	var ps []document.Pair
	add := func(attr, enc string) { ps = append(ps, document.Pair{Attr: attr, Val: enc}) }

	// Core cohort: present in every object, values functions of the
	// latent group, exactly as NoBench derives everything from num.
	// The derived values share the group's residue class x = g mod 100,
	// so str1, dyn1, dyn2 and nested_obj.str co-occur systematically —
	// the association structure the AG partitioner clusters.
	x := grp % 100
	add("bool", document.EncodeBool(grp%2 == 0))
	add("str1", document.EncodeString(fmt.Sprintf("GROUP_%d", x)))
	add("str2", document.EncodeString(fmt.Sprintf("STR_%d", grp)))
	if x%3 == 0 { // dynamically typed (NoBench's dyn1)
		add("dyn1", document.EncodeInt(x))
	} else {
		add("dyn1", document.EncodeString(fmt.Sprintf("D%d", x)))
	}
	if x%5 < 3 {
		add("dyn2", document.EncodeInt(x/5))
	} else {
		add("dyn2", document.EncodeString(fmt.Sprintf("E%d", x/5)))
	}
	add("nested_obj.str", document.EncodeString(fmt.Sprintf("GROUP_%d", x)))
	add("nested_obj.num", document.EncodeInt(grp))
	add("thousandth", document.EncodeInt(grp/3))

	// nested_arr varies per document: present probabilistically, value
	// a function of the group, so same-group documents never conflict —
	// they differ only in whether they carry it.
	if r.Float64() < 0.8 {
		arrLen := 1 + int(grp%4)
		arr := "["
		for i := 0; i < arrLen; i++ {
			if i > 0 {
				arr += ","
			}
			arr += fmt.Sprintf("%q", fmt.Sprintf("A%d", (grp+int64(i))%30))
		}
		arr += "]"
		add("nested_arr", document.EncodeArrayJSON(arr))
	}
	// The sparse cohort: exactly ten consecutive sparse attributes out
	// of 1000, chosen by the residue class and valued by the group —
	// NoBench gives every object ten sparse attributes derived from
	// num.
	base := x * 10
	for i := int64(0); i < 10; i++ {
		attr := fmt.Sprintf("sparse_%03d", base+i)
		add(attr, document.EncodeString(fmt.Sprintf("S%d_%d", grp, i)))
	}

	return document.New(id, ps)
}

// pickGroup draws the latent group: mostly a recurring recent group,
// sometimes a brand-new one.
func (g *NoBench) pickGroup() int64 {
	if len(g.recent) == 0 || g.rng.Float64() < g.FreshRate {
		grp := g.nextGroup
		g.nextGroup++
		g.recent = append(g.recent, grp)
		if len(g.recent) > g.RecencyPool {
			g.recent = g.recent[1:]
		}
		return grp
	}
	return g.recent[g.rng.Intn(len(g.recent))]
}
