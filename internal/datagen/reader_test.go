package datagen

import (
	"strings"
	"testing"
)

func TestReaderSourceBasic(t *testing.T) {
	src := NewReaderSource("ext", strings.NewReader(
		`{"a":1}`+"\n"+`{"b":2}`+"\n\n"+`{"c":3}`+"\n"))
	w := src.Window(2)
	if len(w) != 2 {
		t.Fatalf("window 1 size = %d", len(w))
	}
	if w[0].ID != 1 || w[1].ID != 2 {
		t.Errorf("ids = %d,%d", w[0].ID, w[1].ID)
	}
	w = src.Window(5)
	if len(w) != 1 {
		t.Fatalf("window 2 size = %d (blank lines skipped, stream exhausted)", len(w))
	}
	if src.Err() != nil {
		t.Errorf("Err = %v", src.Err())
	}
	if src.Count() != 3 {
		t.Errorf("Count = %d", src.Count())
	}
	if src.Name() != "ext" {
		t.Errorf("Name = %s", src.Name())
	}
}

func TestReaderSourceExhausted(t *testing.T) {
	src := NewReaderSource("e", strings.NewReader(""))
	if w := src.Window(3); len(w) != 0 {
		t.Errorf("empty stream yielded %d docs", len(w))
	}
}

func TestReaderSourceMalformed(t *testing.T) {
	src := NewReaderSource("bad", strings.NewReader(`{"a":1}`+"\n"+`{"broken`))
	w := src.Window(10)
	if len(w) != 1 {
		t.Fatalf("got %d docs, want 1 before the malformed line", len(w))
	}
	if src.Err() == nil {
		t.Error("malformed line must surface through Err")
	}
	// The stream stays stopped.
	if w := src.Window(10); len(w) != 0 {
		t.Errorf("stream continued after error: %d docs", len(w))
	}
}

func TestReaderSourceWhitespaceLines(t *testing.T) {
	src := NewReaderSource("w", strings.NewReader("  \t\r\n"+`{"a":1}`+"\n \n"))
	w := src.Window(10)
	if len(w) != 1 {
		t.Fatalf("got %d docs", len(w))
	}
	if src.Err() != nil {
		t.Errorf("Err = %v", src.Err())
	}
}

func TestReaderSourceRoundTripWithDatagen(t *testing.T) {
	// Serialise a generated window and read it back: join semantics
	// must survive.
	gen := NewServerLog(3)
	docs := gen.Window(50)
	var b strings.Builder
	for _, d := range docs {
		data, err := d.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	src := NewReaderSource("replay", strings.NewReader(b.String()))
	back := src.Window(100)
	if len(back) != len(docs) {
		t.Fatalf("got %d docs, want %d", len(back), len(docs))
	}
	for i := range docs {
		if !docs[i].Equal(back[i]) {
			t.Fatalf("doc %d changed across serialisation:\n  %v\n  %v", i, docs[i], back[i])
		}
	}
}
