package datagen

import (
	"repro/internal/document"
)

// Ideal derives the paper's "ideal execution" stream (Sec. VII-E.4):
// one window of an underlying generator is frozen and replayed in every
// subsequent window, with only a small predefined number of previously
// unseen documents added per window. Under this stream the measured
// replication is a direct result of the partitioning algorithm, not of
// unseen-pair broadcasts.
type Ideal struct {
	base     Generator
	frozen   []document.Document
	freshPer int
	nextID   uint64
}

// NewIdeal freezes the first window of base (of size windowSize) and
// adds freshPerWindow new documents drawn from base in every window.
func NewIdeal(base Generator, windowSize, freshPerWindow int) *Ideal {
	frozen := base.Window(windowSize)
	maxID := uint64(0)
	for _, d := range frozen {
		if d.ID > maxID {
			maxID = d.ID
		}
	}
	return &Ideal{
		base:     base,
		frozen:   frozen,
		freshPer: freshPerWindow,
		nextID:   maxID + 1,
	}
}

// Name implements Generator.
func (g *Ideal) Name() string { return g.base.Name() + "-ideal" }

// Window implements Generator. The n parameter is ignored beyond the
// frozen window size: every window replays the frozen documents (with
// fresh ids, as a stream delivers distinct tuples) plus freshPer new
// documents.
func (g *Ideal) Window(_ int) []document.Document {
	out := make([]document.Document, 0, len(g.frozen)+g.freshPer)
	for _, d := range g.frozen {
		replay := document.New(g.nextID, d.Pairs())
		g.nextID++
		out = append(out, replay)
	}
	fresh := g.base.Window(g.freshPer)
	for _, d := range fresh {
		renum := document.New(g.nextID, d.Pairs())
		g.nextID++
		out = append(out, renum)
	}
	return out
}

// FrozenSize reports the size of the replayed window.
func (g *Ideal) FrozenSize() int { return len(g.frozen) }
