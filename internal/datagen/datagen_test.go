package datagen

import (
	"testing"

	"repro/internal/document"
	"repro/internal/join"
)

func TestServerLogDeterministic(t *testing.T) {
	g1 := NewServerLog(42)
	g2 := NewServerLog(42)
	w1 := g1.Window(200)
	w2 := g2.Window(200)
	if len(w1) != 200 || len(w2) != 200 {
		t.Fatalf("window sizes %d/%d", len(w1), len(w2))
	}
	for i := range w1 {
		if !w1[i].Equal(w2[i]) || w1[i].ID != w2[i].ID {
			t.Fatalf("doc %d differs across same-seed generators", i)
		}
	}
}

func TestServerLogIDsMonotonic(t *testing.T) {
	g := NewServerLog(1)
	var last uint64
	for w := 0; w < 3; w++ {
		for _, d := range g.Window(50) {
			if d.ID <= last {
				t.Fatalf("id %d not increasing after %d", d.ID, last)
			}
			last = d.ID
		}
	}
}

func TestServerLogSeverityNearUbiquitous(t *testing.T) {
	g := NewServerLog(7)
	docs := g.Window(500)
	stats := document.CollectAttrStats(docs)
	c := stats.DocCount["Severity"]
	if c < 450 {
		t.Errorf("Severity in %d/500 docs; must be near-ubiquitous", c)
	}
	if c == 500 {
		t.Errorf("Severity strictly ubiquitous; rwData must not auto-trigger expansion")
	}
	if stats.Distinct["Severity"] > 6 {
		t.Errorf("Severity distinct = %d, want <= 6", stats.Distinct["Severity"])
	}
}

func TestServerLogHasJoins(t *testing.T) {
	g := NewServerLog(7)
	docs := g.Window(300)
	res := join.Batch(join.NewHBJ(), docs)
	if len(res.Pairs) == 0 {
		t.Error("server log window produced no joinable pairs")
	}
}

func TestServerLogDrift(t *testing.T) {
	g := NewServerLog(7)
	w1 := g.Window(400)
	w2 := g.Window(400)
	seen := make(map[document.Pair]bool)
	for _, d := range w1 {
		for _, p := range d.Pairs() {
			seen[p] = true
		}
	}
	unseen := 0
	for _, d := range w2 {
		for _, p := range d.Pairs() {
			if !seen[p] {
				unseen++
				break
			}
		}
	}
	if unseen == 0 {
		t.Error("no drift: second window introduced no unseen pairs")
	}
}

func TestServerLogZeroDriftIsStable(t *testing.T) {
	freshPairs := func(g *ServerLog) int {
		w1 := g.Window(600)
		seen := make(map[document.Pair]bool)
		for _, d := range w1 {
			for _, p := range d.Pairs() {
				seen[p] = true
			}
		}
		fresh := 0
		for _, d := range g.Window(600) {
			for _, p := range d.Pairs() {
				if !seen[p] {
					fresh++
				}
			}
		}
		return fresh
	}
	stable := NewServerLog(7)
	stable.DriftRate = 0
	drifting := NewServerLog(7)
	drifting.DriftRate = 0.15
	fs, fd := freshPairs(stable), freshPairs(drifting)
	// Without drift only tail coverage of the fixed entity pools mints
	// new pairs; with drift, fresh entities dominate.
	if fs*2 >= fd {
		t.Errorf("zero-drift fresh pairs %d not well below drifting %d", fs, fd)
	}
}

func TestNoBenchShape(t *testing.T) {
	g := NewNoBench(3)
	docs := g.Window(100)
	stats := document.CollectAttrStats(docs)
	// The core cohort is present in every object, as in NoBench.
	for _, attr := range []string{"bool", "str1", "str2", "dyn1", "dyn2", "nested_obj.str", "nested_obj.num", "thousandth"} {
		if stats.DocCount[attr] != 100 {
			t.Errorf("%s present in %d/100 docs; the core cohort is ubiquitous", attr, stats.DocCount[attr])
		}
	}
	// nested_arr varies per document.
	if c := stats.DocCount["nested_arr"]; c == 0 || c == 100 {
		t.Errorf("nested_arr in %d/100 docs; must be probabilistic", c)
	}
	if stats.Distinct["bool"] != 2 {
		t.Errorf("bool distinct = %d", stats.Distinct["bool"])
	}
	// Sparse attributes exist and are sparse.
	sparse := 0
	for a, c := range stats.DocCount {
		if len(a) > 7 && a[:7] == "sparse_" {
			sparse++
			if c == 100 {
				t.Errorf("sparse attribute %s is ubiquitous", a)
			}
		}
	}
	if sparse == 0 {
		t.Error("no sparse attributes generated")
	}
}

func TestNoBenchDiversity(t *testing.T) {
	g := NewNoBench(3)
	w1 := g.Window(200)
	seen := make(map[document.Pair]bool)
	for _, d := range w1 {
		for _, p := range d.Pairs() {
			seen[p] = true
		}
	}
	w2 := g.Window(200)
	unseenDocs := 0
	for _, d := range w2 {
		for _, p := range d.Pairs() {
			if !seen[p] {
				unseenDocs++
				break
			}
		}
	}
	// The paper observes that a large share of each subsequent window
	// consists of documents with unseen pairs.
	if unseenDocs < 25 {
		t.Errorf("only %d/200 docs carry unseen pairs; nbData must be diverse", unseenDocs)
	}
}

func TestNoBenchJoinable(t *testing.T) {
	g := NewNoBench(3)
	docs := g.Window(150)
	res := join.Batch(join.NewHBJ(), docs)
	if len(res.Pairs) == 0 {
		t.Error("NoBench window produced no joinable pairs")
	}
}

func TestNoBenchDeterministic(t *testing.T) {
	a := NewNoBench(9).Window(50)
	b := NewNoBench(9).Window(50)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("doc %d differs", i)
		}
	}
}

func TestIdealReplaysFrozenWindow(t *testing.T) {
	base := NewServerLog(5)
	ideal := NewIdeal(base, 100, 5)
	w1 := ideal.Window(0)
	w2 := ideal.Window(0)
	if len(w1) != 105 || len(w2) != 105 {
		t.Fatalf("window sizes %d/%d, want 105", len(w1), len(w2))
	}
	// The first 100 documents of both windows carry identical pair sets
	// (fresh ids).
	for i := 0; i < 100; i++ {
		if !w1[i].Equal(w2[i]) {
			t.Fatalf("replayed doc %d differs", i)
		}
		if w1[i].ID == w2[i].ID {
			t.Fatalf("replayed doc %d reused id %d", i, w1[i].ID)
		}
	}
	if ideal.FrozenSize() != 100 {
		t.Errorf("FrozenSize = %d", ideal.FrozenSize())
	}
}

func TestIdealIDsUnique(t *testing.T) {
	ideal := NewIdeal(NewServerLog(5), 50, 3)
	ids := make(map[uint64]bool)
	for w := 0; w < 4; w++ {
		for _, d := range ideal.Window(0) {
			if ids[d.ID] {
				t.Fatalf("duplicate id %d", d.ID)
			}
			ids[d.ID] = true
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range []string{"rwData", "nbData", "rw", "nb", "serverlogs", "nobench"} {
		if g, ok := ByName(n, 1); !ok || g == nil {
			t.Errorf("ByName(%s) failed", n)
		}
	}
	if _, ok := ByName("bogus", 1); ok {
		t.Error("ByName(bogus) must fail")
	}
}

func TestGeneratorNames(t *testing.T) {
	if NewServerLog(1).Name() != "rwData" {
		t.Error("rwData name")
	}
	if NewNoBench(1).Name() != "nbData" {
		t.Error("nbData name")
	}
	if NewIdeal(NewServerLog(1), 10, 1).Name() != "rwData-ideal" {
		t.Error("ideal name")
	}
}
