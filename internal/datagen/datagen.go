// Package datagen provides the deterministic workload generators used
// by the experiments: a server-log generator standing in for the
// paper's proprietary real-world dataset (rwData), a re-implementation
// of the NoBench JSON generator (nbData, Chasseur et al.) with the
// `num` attribute removed as the paper prescribes, and the "ideal
// execution" stream derivation of Sec. VII-E.4.
package datagen

import (
	"math/rand"

	"repro/internal/document"
)

// Generator produces a stream of schema-free documents in windows.
// Document ids increase monotonically across windows; generators are
// deterministic for a fixed seed.
type Generator interface {
	// Name identifies the dataset ("rwData", "nbData", ...).
	Name() string
	// Window returns the next n documents of the stream.
	Window(n int) []document.Document
}

// zipfValues draws an index in [0,n) with a Zipf-like skew: low indexes
// are much more frequent, mimicking the skewed value distributions of
// real server logs.
func zipfValues(r *rand.Rand, z *rand.Zipf, n int) int {
	v := int(z.Uint64())
	if v >= n {
		v = n - 1
	}
	return v
}

// ByName builds a generator for a dataset name with the given seed.
func ByName(name string, seed int64) (Generator, bool) {
	switch name {
	case "rwData", "rw", "serverlogs":
		return NewServerLog(seed), true
	case "nbData", "nb", "nobench":
		return NewNoBench(seed), true
	default:
		return nil, false
	}
}
