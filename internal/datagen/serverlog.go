package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/document"
)

// ServerLog generates documents shaped like the paper's Fig. 1 company
// server logs: login, file-access, network and audit events from a
// handful of servers, with the properties the evaluation depends on:
//
//   - functional structure for the association analysis to exploit:
//     every user works from a fixed location and workstation IP and owns
//     a few files, so User/IP pairs form equivalence groups, file pairs
//     imply their owner's pairs, and the AG partitioner can cluster each
//     user's activity into one partition;
//   - near-ubiquitous low-variety attributes (Severity, Server) — the
//     reason the DS competitor needs forced attribute expansion on the
//     real-world data, while no strictly ubiquitous attribute exists and
//     AG/SC run without expansion;
//   - Zipf-skewed users and files, creating the high inter-document
//     connectivity that makes NLJ beat HBJ (long posting lists for hot
//     pairs);
//   - stream drift: every window introduces previously unseen users,
//     files and IPs at DriftRate, reproducing the paper's observation
//     that "in every subsequent window a large number of the documents
//     consist of previously unseen attribute-value pairs".
type ServerLog struct {
	rng    *rand.Rand
	userZ  *rand.Zipf
	nextID uint64

	// DriftRate is the fraction of documents per window that reference
	// a brand-new entity (user with fresh workstation/files, or a
	// fresh IP). Set to 0 for a fully stable stream.
	DriftRate float64

	// RepeatRate is the probability that an event repeats the previous
	// event's content (log storms: retries, repeated failures, health
	// checks). Server logs are highly repetitive; the resulting
	// duplicate documents give rwData the "large document lists for a
	// single hash value" the paper blames for HBJ's behaviour, and the
	// shared FP-tree branches FPJ exploits.
	RepeatRate float64

	users     []slUser
	lastPairs []document.Pair
	epoch     int // counts windows, used to mint fresh entity names
	minted    int // counter for fresh entities
}

// slUser carries one user's fixed context: the functional dependencies
// User -> Location, User -> workstation IP, User -> owned files.
type slUser struct {
	name     string
	location string
	ip       string
	files    []string
}

const (
	slUsers     = 40
	slServers   = 5
	slLocations = 3
	slFilesPer  = 3
)

var (
	slSeverities = []string{"Warning", "Error", "Critical", "Info", "Notice", "Debug"}
	slActions    = []string{"read", "write", "delete"}
	slStatuses   = []string{"ok", "denied", "failed"}
	slLocNames   = []string{"Kaiserslautern", "Frankfurt", "Munich"}
)

// NewServerLog creates the rwData surrogate with default drift.
func NewServerLog(seed int64) *ServerLog {
	g := &ServerLog{
		rng:        rand.New(rand.NewSource(seed)),
		nextID:     1,
		DriftRate:  0.08,
		RepeatRate: 0.35,
	}
	g.userZ = rand.NewZipf(g.rng, 1.2, 1, slUsers-1)
	for i := 0; i < slUsers; i++ {
		g.users = append(g.users, g.mintUser(fmt.Sprintf("user%02d", i)))
	}
	return g
}

// mintUser builds a user with their fixed location, IP and files.
func (g *ServerLog) mintUser(name string) slUser {
	u := slUser{
		name:     name,
		location: slLocNames[g.rng.Intn(slLocations)],
		ip:       fmt.Sprintf("10.2.%d.%d", g.rng.Intn(8), 100+g.rng.Intn(120)),
	}
	for f := 0; f < slFilesPer; f++ {
		u.files = append(u.files, fmt.Sprintf("/srv/data/%s-file%d.dat", name, f))
	}
	return u
}

// Name implements Generator.
func (g *ServerLog) Name() string { return "rwData" }

// Window implements Generator.
func (g *ServerLog) Window(n int) []document.Document {
	g.epoch++
	docs := make([]document.Document, 0, n)
	for i := 0; i < n; i++ {
		docs = append(docs, g.next())
	}
	return docs
}

func (g *ServerLog) next() document.Document {
	id := g.nextID
	g.nextID++

	// Log storm: repeat the previous event verbatim under a fresh id.
	if g.lastPairs != nil && g.rng.Float64() < g.RepeatRate {
		return document.New(id, g.lastPairs)
	}

	// Novelty in real logs is bursty (deployments, incident storms,
	// scanner sweeps), not uniform: every third window carries about
	// double the baseline drift, every second window about half. The
	// bursts are what push the routing quality past the θ threshold
	// and trigger repartitioning (paper Sec. VI-A, Fig. 9).
	rate := g.DriftRate
	switch g.epoch % 3 {
	case 0:
		rate *= 2.2
	case 1:
		rate *= 0.4
	}
	drift := g.rng.Float64() < rate
	user := g.pickUser(drift)
	sev := g.pickSeverity()
	// The serving machine is determined by the user's location (one
	// data centre per site plus shared servers), so Server values
	// co-occur with Location values rather than forming independent
	// hot pairs.
	server := 0
	for i, loc := range slLocNames {
		if loc == user.location {
			server = i
		}
	}
	if g.rng.Intn(4) == 0 {
		server = slLocations + g.rng.Intn(slServers-slLocations)
	}

	var ps []document.Pair
	add := func(attr, enc string) { ps = append(ps, document.Pair{Attr: attr, Val: enc}) }

	// Severity and Server appear in nearly (but not strictly) every
	// event. Keeping them just short of ubiquity reproduces the
	// paper's expansion profile for the real-world data: AG and SC
	// find no disabling attribute and run without expansion, while DS
	// still needs it (forced, over the near-ubiquitous Severity).
	if g.rng.Intn(100) > 1 {
		add("Severity", document.EncodeString(sev))
	}
	if g.rng.Intn(100) > 1 {
		add("Server", document.EncodeString(fmt.Sprintf("srv%d", server)))
	}

	switch g.rng.Intn(10) {
	case 0, 1, 2, 3: // login event
		add("User", document.EncodeString(user.name))
		add("Location", document.EncodeString(user.location))
		if g.rng.Intn(3) > 0 {
			add("IP", document.EncodeString(user.ip))
		}
		add("Status", document.EncodeString(slStatuses[g.rng.Intn(len(slStatuses))]))
	case 4, 5, 6: // file access event
		add("User", document.EncodeString(user.name))
		add("File", document.EncodeString(g.pickFile(user)))
		add("Action", document.EncodeString(slActions[g.rng.Intn(len(slActions))]))
	case 7, 8: // network event from a workstation
		peer := g.pickUser(false)
		add("IP", document.EncodeString(peer.ip))
		if g.rng.Intn(2) == 0 {
			add("MsgId", document.EncodeInt(int64(g.rng.Intn(16))))
		}
	default: // audit event: user + workstation correlation
		add("User", document.EncodeString(user.name))
		add("IP", document.EncodeString(user.ip))
		add("Location", document.EncodeString(user.location))
	}
	g.lastPairs = ps
	return document.New(id, ps)
}

func (g *ServerLog) pickSeverity() string {
	// Skewed: warnings dominate, debug lines are rare.
	switch v := g.rng.Intn(100); {
	case v < 45:
		return slSeverities[0] // Warning
	case v < 70:
		return slSeverities[1] // Error
	case v < 80:
		return slSeverities[2] // Critical
	case v < 90:
		return slSeverities[3] // Info
	case v < 96:
		return slSeverities[4] // Notice
	default:
		return slSeverities[5] // Debug
	}
}

func (g *ServerLog) pickUser(fresh bool) slUser {
	if fresh {
		g.minted++
		u := g.mintUser(fmt.Sprintf("user-w%d-%d", g.epoch, g.minted))
		g.users = append(g.users, u)
		return u
	}
	// Mostly Zipf over the stable base population; occasionally a
	// uniform draw over the full pool, so entities minted by drift
	// recur — that recurrence is what the δ update gate keys on.
	if g.rng.Intn(5) == 0 {
		return g.users[g.rng.Intn(len(g.users))]
	}
	return g.users[zipfValues(g.rng, g.userZ, len(g.users))]
}

// pickFile returns mostly the user's own files (the functional
// dependency File -> User the implies relation picks up), with an
// occasional access to another user's file keeping the file graph
// connected.
func (g *ServerLog) pickFile(u slUser) string {
	if g.rng.Intn(5) == 0 {
		other := g.users[g.rng.Intn(len(g.users))]
		return other.files[g.rng.Intn(len(other.files))]
	}
	return u.files[g.rng.Intn(len(u.files))]
}
