// Command sfj-serve runs the schema-free stream join as a multi-tenant
// HTTP service: clients register standing queries and stream documents
// in; window state is shared across queries with matching
// configurations.
//
//	sfj-serve -addr :8080 -window 1000
//
//	curl -X POST localhost:8080/queries -d '{"id":"mine","window":1000}'
//	curl -X POST localhost:8080/documents -d '{"User":"A","Severity":"Warning"}'
//	curl -X POST localhost:8080/documents --data-binary @batch.ndjson
//	curl 'localhost:8080/queries/mine/results?wait=10'
//	curl -N localhost:8080/queries/mine/stream
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliflags"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8080", "listen address")
		engine        = flag.String("engine", "FPJ", "default query's join engine: FPJ, NLJ or HBJ")
		window        = flag.Int("window", 0, "default query auto-tumbles after N documents (0 = manual /tumble only)")
		telemOn       = flag.Bool("telemetry", true, "expose /metrics and /debug/stats")
		maxQueries    = flag.Int("max-queries", 1024, "admission cap on concurrently registered standing queries")
		resultBuffer  = flag.Int("result-buffer", 4096, "per-query result buffer capacity; the oldest results are dropped when a client falls behind")
		maxWindowDocs = flag.Int("max-window-docs", 1_000_000, "force-tumble any window reaching N documents — the guard against a manual window nobody tumbles (0 = unbounded, rejected when -window is 0)")
		spillDir      = flag.String("spill-dir", "", "with -memory-budget: directory receiving spilled window groups; empty starts the over-budget ladder at forced tumbling")
	)
	var memoryBudget cliflags.ByteSize
	flag.Var(&memoryBudget, "memory-budget", "bound on resident window-state bytes, K/M/G suffixes accepted (e.g. 256M); over it the service spills window groups to -spill-dir, compresses spill files, force-tumbles the largest group, and finally answers 429 on /documents (0 = ungoverned)")
	// Transport knobs, shared verbatim with sfj-topology so deployment
	// scripts carry one flag set: they configure the cluster data plane
	// when the service fronts a distributed run. The in-process query
	// set this binary currently hosts has no transport, so here they
	// are validated and recorded only.
	transport := cliflags.RegisterTransport(flag.CommandLine)
	flag.Parse()

	if err := transport.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *window == 0 && *maxWindowDocs == 0 {
		fmt.Fprintln(os.Stderr, "-window 0 with -max-window-docs 0 grows window state without bound; set one of them")
		os.Exit(2)
	}
	if *spillDir != "" && memoryBudget == 0 {
		fmt.Fprintln(os.Stderr, "-spill-dir without -memory-budget has no effect; set a budget")
		os.Exit(2)
	}
	opts := []server.Option{
		server.WithEngine(*engine),
		server.WithWindow(*window),
		server.WithMaxQueries(*maxQueries),
		server.WithResultBuffer(*resultBuffer),
		server.WithMaxWindowDocs(*maxWindowDocs),
		server.WithMemoryBudget(memoryBudget.Int64()),
		server.WithSpillDir(*spillDir),
	}
	if *telemOn {
		opts = append(opts, server.WithTelemetry(telemetry.NewRegistry()))
	}
	s, err := server.New(opts...)
	if err != nil {
		log.Fatal(err)
	}
	// Bound every phase of a connection's life: a client that stalls
	// mid-request (or never sends one) must not pin a handler goroutine
	// and a connection slot forever. Write timeout must outlast the
	// longest allowed long-poll wait (60s) plus response time.
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      90 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("sfj-serve listening on %s (engine=%s window=%d max-queries=%d)\n", *addr, *engine, *window, *maxQueries)
	if memoryBudget > 0 {
		fmt.Printf("memory governor: budget=%s spill-dir=%q\n", memoryBudget.String(), *spillDir)
	}
	fmt.Printf("transport: %s\n", transport)
	if *telemOn {
		fmt.Printf("scrape metrics: curl http://%s/metrics\n", *addr)
	}

	// Serve until SIGINT/SIGTERM, then drain: Close() releases waiting
	// long-polls and ends SSE streams so Shutdown's drain of in-flight
	// requests completes promptly instead of waiting out their polls.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("sfj-serve: shutting down")
	s.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sfj-serve: shutdown: %v", err)
	}
}
