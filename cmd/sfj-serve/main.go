// Command sfj-serve runs the schema-free stream join as an HTTP
// service.
//
//	sfj-serve -addr :8080 -window 1000
//
//	curl -X POST localhost:8080/documents -d '{"User":"A","Severity":"Warning"}'
//	curl -X POST localhost:8080/documents --data-binary @batch.ndjson
//	curl -X POST localhost:8080/tumble
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		engine  = flag.String("engine", "FPJ", "join engine: FPJ, NLJ or HBJ")
		window  = flag.Int("window", 0, "auto-tumble after N documents (0 = manual /tumble only)")
		telemOn = flag.Bool("telemetry", true, "expose /metrics and /debug/stats")
	)
	flag.Parse()

	cfg := server.Config{Engine: *engine, WindowSize: *window}
	if *telemOn {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("sfj-serve listening on %s (engine=%s window=%d)\n", *addr, *engine, *window)
	if *telemOn {
		fmt.Printf("scrape metrics: curl http://%s/metrics\n", *addr)
	}
	log.Fatal(httpServer.ListenAndServe())
}
