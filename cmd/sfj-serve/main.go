// Command sfj-serve runs the schema-free stream join as an HTTP
// service.
//
//	sfj-serve -addr :8080 -window 1000
//
//	curl -X POST localhost:8080/documents -d '{"User":"A","Severity":"Warning"}'
//	curl -X POST localhost:8080/documents --data-binary @batch.ndjson
//	curl -X POST localhost:8080/tumble
//	curl localhost:8080/stats
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		engine  = flag.String("engine", "FPJ", "join engine: FPJ, NLJ or HBJ")
		window  = flag.Int("window", 0, "auto-tumble after N documents (0 = manual /tumble only)")
		telemOn = flag.Bool("telemetry", true, "expose /metrics and /debug/stats")
		// Transport knobs, shared verbatim with sfj-topology so deployment
		// scripts carry one flag set: they configure the cluster data
		// plane when the service fronts a distributed run. The in-process
		// pipeline this binary currently hosts has no transport, so here
		// they are validated and recorded only.
		wireFormat = flag.String("wire-format", cluster.WireBinary, "cluster data-plane encoding: binary or gob (applies when serving over cluster workers)")
		frameBatch = flag.Int("frame-batch", 32, "max tuples coalesced into one binary data frame (cluster data plane)")
		frameFlush = flag.Duration("frame-flush-interval", 0, "how long a peer sender waits to fill a frame (0 = flush immediately; cluster data plane)")
		frameComp  = flag.Bool("frame-compress", false, "DEFLATE-compress binary data frames (cluster data plane)")
	)
	flag.Parse()

	if !cluster.ValidWireFormat(*wireFormat) {
		fmt.Fprintf(os.Stderr, "unknown -wire-format %q (want binary or gob)\n", *wireFormat)
		os.Exit(2)
	}
	if *frameBatch <= 0 {
		fmt.Fprintln(os.Stderr, "-frame-batch must be positive")
		os.Exit(2)
	}
	cfg := server.Config{Engine: *engine, WindowSize: *window}
	if *telemOn {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	s, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Bound every phase of a connection's life: a client that stalls
	// mid-request (or never sends one) must not pin a handler goroutine
	// and a connection slot forever.
	httpServer := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	fmt.Printf("sfj-serve listening on %s (engine=%s window=%d)\n", *addr, *engine, *window)
	fmt.Printf("transport: wire-format=%s frame-batch=%d frame-flush-interval=%s frame-compress=%v\n",
		*wireFormat, *frameBatch, *frameFlush, *frameComp)
	if *telemOn {
		fmt.Printf("scrape metrics: curl http://%s/metrics\n", *addr)
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests instead
	// of dropping them mid-response: a batch ingest cut off halfway
	// would leave the caller unsure which documents were accepted.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpServer.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("sfj-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("sfj-serve: shutdown: %v", err)
	}
}
