// Command sfj-benchguard gates performance regressions: it compares the
// ns/op of selected hot-path benchmarks between a recorded baseline and
// a current run, and exits non-zero when any guarded benchmark slowed
// down by more than the tolerance. Both files are `go test -json`
// streams (the format the repo's BENCH_issue*_{before,after}.json
// trajectory files use); plain `go test -bench` text output is accepted
// too.
//
//	go test -run '^$' -bench Fig11aFPJServerLog -json . > current.json
//	sfj-benchguard -baseline BENCH_issue2_after.json -current current.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// event is the subset of the test2json stream the guard reads.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches one benchmark result line; the -N suffix is the
// GOMAXPROCS tag and is stripped so runs on different machines compare.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// parse extracts ns/op per benchmark from a results file, keeping the
// minimum across -count repetitions (the least-noisy sample).
func parse(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	// Reassemble the output stream: test2json splits lines across
	// events, so concatenate every Output payload; non-JSON lines are
	// taken verbatim (plain -bench output).
	var text strings.Builder
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "{") {
			var ev event
			if err := json.Unmarshal([]byte(line), &ev); err == nil {
				if ev.Action == "output" {
					text.WriteString(ev.Output)
				}
				continue
			}
		}
		text.WriteString(line)
		text.WriteByte('\n')
	}
	out := make(map[string]float64)
	for _, m := range benchLine.FindAllStringSubmatch(text.String(), -1) {
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_issue7_after.json", "baseline `file` (go test -json stream)")
		currentPath  = flag.String("current", "", "current `file` (go test -json stream)")
		// The guarded wire benches are the zero-alloc encode paths, which
		// hold a tight ns/op band; WireDecode allocates per tuple and its
		// GC-driven variance exceeds the tolerance on shared machines, so
		// it is benched and tracked in the trajectory files but not gated.
		benches = flag.String("bench", "Fig11aFPJServerLog,Fig11bFPJNoBench,FPTreeInsert,JoinableClassify,ParallelBatchProbe/pool=4,WireEncode/format=binary,FrameBatch/format=binary/batch=16",
			"comma-separated guarded benchmark names (without the Benchmark prefix)")
		tolerance = flag.Float64("tolerance", 0.05, "maximum allowed relative ns/op increase")
	)
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "sfj-benchguard: -current is required")
		os.Exit(2)
	}
	baseline, err := parse(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfj-benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	current, err := parse(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sfj-benchguard: current: %v\n", err)
		os.Exit(2)
	}

	failed := false
	fmt.Printf("%-36s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, short := range strings.Split(*benches, ",") {
		name := "Benchmark" + strings.TrimSpace(short)
		base, okB := baseline[name]
		cur, okC := current[name]
		switch {
		case !okB:
			fmt.Printf("%-36s %14s\n", short, "missing")
			failed = true
		case !okC:
			fmt.Printf("%-36s %14.0f %14s\n", short, base, "missing")
			failed = true
		default:
			delta := cur/base - 1
			verdict := ""
			if delta > *tolerance {
				verdict = "  REGRESSION"
				failed = true
			}
			fmt.Printf("%-36s %14.0f %14.0f %7.1f%%%s\n", short, base, cur, 100*delta, verdict)
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "sfj-benchguard: hot-path regression beyond %.0f%% (or missing benchmark)\n", 100**tolerance)
		os.Exit(1)
	}
	fmt.Printf("ok: all guarded benchmarks within %.0f%% of baseline\n", 100**tolerance)
}
