// Command sfj-experiments regenerates the paper's evaluation figures.
//
// Usage:
//
//	sfj-experiments -figure 6a          # one figure
//	sfj-experiments -figure all         # every figure, paper order
//	sfj-experiments -figure 11c -scale quick
//
// Figures 6-8 sweep the AG/SC/DS partitioners over m and w on both
// datasets; figure 9 sweeps the repartitioning threshold; figure 10 is
// the ideal execution; figure 11 times the local join algorithms.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "all", "figure id (6a..11d) or 'all'")
		scale  = flag.String("scale", "full", "experiment scale: full or quick")
		seed   = flag.Int64("seed", 42, "generator seed")
		chart  = flag.Bool("chart", false, "render figures as ASCII bar charts")
	)
	flag.Parse()

	var sc experiments.Scale
	switch *scale {
	case "full":
		sc = experiments.FullScale()
	case "quick":
		sc = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want full or quick)\n", *scale)
		os.Exit(2)
	}
	sc.Seed = *seed

	if *figure == "all" {
		figs, err := experiments.All(sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, f := range figs {
			fmt.Println(render(f, *chart))
		}
		return
	}
	f, err := experiments.ByID(*figure, sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%v\navailable: %s\n", err, strings.Join(experiments.IDs(), " "))
		os.Exit(1)
	}
	fmt.Println(render(f, *chart))
}

func render(f *experiments.Figure, chart bool) string {
	if chart {
		return f.RenderChart()
	}
	return f.Render()
}
