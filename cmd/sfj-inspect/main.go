// Command sfj-inspect analyses a document stream the way the system's
// components see it: attribute statistics, the association-group
// structure the AG partitioner finds, the attribute-value expansion the
// analysis would apply, and the FP-tree shape the Joiners would build.
//
//	sfj-inspect -dataset rwData -n 2000 -m 8
//	sfj-datagen -dataset nbData -n 1000 | sfj-inspect -input - -m 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/datagen"
	"repro/internal/document"
	"repro/internal/expansion"
	"repro/internal/fptree"
	"repro/internal/join"
	"repro/internal/partition"
)

func main() {
	var (
		dataset = flag.String("dataset", "rwData", "dataset: rwData or nbData")
		input   = flag.String("input", "", "read JSON lines from file ('-' = stdin) instead of a generator")
		n       = flag.Int("n", 2000, "number of documents to analyse")
		m       = flag.Int("m", 8, "number of partitions to plan for")
		seed    = flag.Int64("seed", 42, "generator seed")
		topK    = flag.Int("top", 10, "how many attributes to list")
	)
	flag.Parse()

	docs, err := load(*dataset, *input, *n, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(docs) == 0 {
		fmt.Fprintln(os.Stderr, "no documents")
		os.Exit(1)
	}

	fmt.Printf("=== %d documents ===\n\n", len(docs))
	printAttrStats(docs, *topK)
	printExpansion(docs, *m)
	printAssociationGroups(docs, *m)
	printTree(docs)
	printJoinDensity(docs)
}

func load(dataset, input string, n int, seed int64) ([]document.Document, error) {
	if input != "" {
		f := os.Stdin
		if input != "-" {
			var err error
			f, err = os.Open(input)
			if err != nil {
				return nil, err
			}
			defer f.Close()
		}
		src := datagen.NewReaderSource(input, f)
		docs := src.Window(n)
		return docs, src.Err()
	}
	gen, ok := datagen.ByName(dataset, seed)
	if !ok {
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
	return gen.Window(n), nil
}

func printAttrStats(docs []document.Document, topK int) {
	stats := document.CollectAttrStats(docs)
	order := stats.Order()
	fmt.Printf("--- attributes (%d total; global FP-tree order) ---\n", len(order))
	fmt.Printf("%-24s %10s %10s %10s\n", "attribute", "docs", "coverage", "distinct")
	for i, a := range order {
		if i == topK {
			fmt.Printf("  ... %d more\n", len(order)-topK)
			break
		}
		fmt.Printf("%-24s %10d %9.1f%% %10d\n",
			a, stats.DocCount[a], 100*float64(stats.DocCount[a])/float64(stats.TotalDocs), stats.Distinct[a])
	}
	ub := stats.Ubiquitous()
	fmt.Printf("ubiquitous attributes: %d %v\n\n", len(ub), ub)
}

func printExpansion(docs []document.Document, m int) {
	fmt.Printf("--- attribute-value expansion (m=%d) ---\n", m)
	if spec := expansion.Analyze(docs, m); spec != nil {
		fmt.Printf("required: %s\n", spec)
		fmt.Printf("expected replication from missing components: %.2f\n\n", spec.ExpectedReplication(m))
		return
	}
	fmt.Printf("not required: no disabling attribute (ubiquitous with < %d values)\n\n", m)
}

func printAssociationGroups(docs []document.Document, m int) {
	spec := expansion.Analyze(docs, m)
	transformed := spec.ApplyBatch(docs)
	groups := partition.AssociationGroups{}.Groups(transformed)
	sort.Slice(groups, func(i, j int) bool { return groups[i].Load > groups[j].Load })
	fmt.Printf("--- association groups: %d ---\n", len(groups))
	show := 5
	if show > len(groups) {
		show = len(groups)
	}
	for i := 0; i < show; i++ {
		g := groups[i]
		fmt.Printf("  load=%-6d pairs=%-4d sample=%v\n", g.Load, len(g.Pairs), sample(g, 3))
	}
	tbl := partition.AssignGroups(groups, m)
	st := partition.Evaluate(tbl, transformed)
	fmt.Printf("planned %d partitions: %s\n\n", m, st)
}

func sample(g partition.AssocGroup, k int) []string {
	var out []string
	for _, p := range g.Pairs.Sorted() {
		if len(out) == k {
			break
		}
		out = append(out, p.String())
	}
	return out
}

func printTree(docs []document.Document) {
	tree := fptree.Build(docs)
	fmt.Printf("--- FP-tree ---\n%s\n\n", tree.Stats())
}

func printJoinDensity(docs []document.Document) {
	limit := docs
	if len(limit) > 2000 {
		limit = limit[:2000]
	}
	res := join.Batch(join.NewHBJ(), limit)
	pairs := len(res.Pairs)
	fmt.Printf("--- join density (first %d docs) ---\n", len(limit))
	fmt.Printf("join pairs: %d (%.2f per document)\n", pairs, 2*float64(pairs)/float64(len(limit)))
}
