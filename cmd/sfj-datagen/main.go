// Command sfj-datagen emits the synthetic datasets as JSON lines, one
// document per line, for inspection or for feeding external tools.
//
// Usage:
//
//	sfj-datagen -dataset rwData -n 1000
//	sfj-datagen -dataset nbData -n 100 -seed 7 > sample.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
)

func main() {
	var (
		dataset = flag.String("dataset", "rwData", "dataset: rwData or nbData")
		n       = flag.Int("n", 100, "number of documents")
		seed    = flag.Int64("seed", 42, "generator seed")
	)
	flag.Parse()

	gen, ok := datagen.ByName(*dataset, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for _, d := range gen.Window(*n) {
		line, err := json.Marshal(d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w.Write(line)
		w.WriteByte('\n')
	}
}
