// Command sfj-topology runs the complete scale-out stream-join system
// end to end: the Fig. 2 topology (reader, partition creators, merger,
// assigners, joiners) over a generated document stream, printing the
// per-window routing statistics and join counts.
//
// Usage:
//
//	sfj-topology -dataset rwData -m 8 -windows 6 -window-size 1200
//	sfj-topology -dataset nbData -algo DS -theta 0.6
//	sfj-topology -cluster 3            # distribute over 3 TCP workers
//	sfj-topology -input logs.jsonl     # external JSON-lines stream
//	sfj-datagen -n 5000 | sfj-topology -input -
//
// Failover demo — checkpoint into a directory, hard-kill one of the
// workers mid-run, and watch the run recover on the survivors with the
// exact same join result:
//
//	sfj-topology -cluster 4 -recover /tmp/sfj-ckpt -kill-worker 1:300
//
// Elastic rescale demo — start on 3 workers, grow to 5 after window 1
// and shrink to 2 after window 4, migrating operator state at the
// window frontier without replaying the source:
//
//	sfj-topology -cluster 3 -rescale-at 1:+2,4:-3
//
// With -metrics-addr set, a running cluster also accepts on-demand
// rescales: `curl -X POST -d n=5 http://addr/rescale` and inspect the
// live placement at `GET /debug/placement`.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cliflags"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
	"repro/internal/state"
	"repro/internal/telemetry"
)

func main() {
	var (
		dataset     = flag.String("dataset", "rwData", "dataset: rwData or nbData")
		algo        = flag.String("algo", "AG", "partitioner: AG, SC or DS")
		engine      = flag.String("engine", "FPJ", "local join engine: FPJ, NLJ or HBJ")
		m           = flag.Int("m", 8, "number of partitions / joiners")
		creators    = flag.Int("creators", 2, "partition creator tasks")
		assigners   = flag.Int("assigners", 6, "assigner tasks")
		windows     = flag.Int("windows", 6, "number of windows")
		windowSize  = flag.Int("window-size", 1200, "documents per window")
		theta       = flag.Float64("theta", 0.2, "repartitioning threshold θ")
		delta       = flag.Int("delta", 3, "partition update threshold δ")
		expansion   = flag.String("expansion", "auto", "attribute expansion: auto, off or forced")
		maxPending  = flag.Int("max-pending", 0, "mailbox capacity per task; producers block when full (0 = unbounded)")
		probePar    = flag.Int("probe-parallelism", 1, "FPJ probe worker pool size per joiner; documents micro-batch (-probe-batch) and probe the FP-tree concurrently (1 = serial)")
		probeBatch  = flag.Int("probe-batch", 0, "joiner micro-batch size feeding the probe pool (0 = 64 when -probe-parallelism > 1, else 1)")
		seed        = flag.Int64("seed", 42, "generator seed")
		clusterN    = flag.Int("cluster", 0, "run across N TCP workers in this process (0 = plain in-process)")
		processes   = flag.Bool("processes", false, "with -cluster N: spawn the N workers as separate OS processes")
		workerSpec  = flag.String("worker", "", "internal: run as cluster worker, format id:count:coordinatorAddr")
		input       = flag.String("input", "", "read JSON-lines documents from this file ('-' = stdin) instead of a generator")
		recoverDir  = flag.String("recover", "", "checkpoint operator state into this directory; -cluster runs additionally survive worker failures (requires a generated -dataset)")
		killWorker  = flag.String("kill-worker", "", "fault-injection demo, format id:afterMs — hard-kill that in-process cluster worker after the delay (needs -cluster N and -recover)")
		metricsAddr = flag.String("metrics-addr", "", "expose /metrics + /debug/stats on this address during the run (e.g. 127.0.0.1:9090; with -worker, use :0 per process)")
		heartbeat   = flag.Duration("heartbeat-interval", 0, "with -cluster N: worker liveness heartbeat interval (0 = default 250ms)")
		lease       = flag.Duration("lease-timeout", 0, "with -cluster N: coordinator declares a silent worker dead after this (0 = default 10s; a hung worker then enters checkpoint recovery when -recover is set)")
		rescaleAt   = flag.String("rescale-at", "", "with -cluster N: elastic rescale schedule, comma-separated window:+k/-k entries (e.g. 1:+2,4:-3) — once window N completes, grow/shrink the cluster by k workers via live state migration")
		chaosSeed   = flag.Int64("chaos-seed", 0, "with -cluster N: run behind fault-injecting proxies driven by a deterministic schedule derived from this seed (0 = off)")
		chaosEvents = flag.Int("chaos-events", 6, "with -chaos-seed: number of scheduled fault events")
		verbose     = flag.Bool("v", false, "print per-window statistics")
		spillDir    = flag.String("spill-dir", "", "with -memory-budget: directory receiving spilled joiner buffers; empty meters pressure without the disk rungs")
	)
	var memoryBudget cliflags.ByteSize
	flag.Var(&memoryBudget, "memory-budget", "per-joiner bound on window-state bytes, K/M/G suffixes accepted (e.g. 64M); over it joiners spill buffered future-window documents to -spill-dir and surface pressure gauges — pair with -max-pending so the spout parks instead of growing queues (0 = ungoverned)")
	transport := cliflags.RegisterTransport(flag.CommandLine)
	flag.Parse()

	var gen datagen.Generator
	var reader *datagen.ReaderSource
	if *input != "" {
		f := os.Stdin
		if *input != "-" {
			var err error
			f, err = os.Open(*input)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			defer f.Close()
		}
		reader = datagen.NewReaderSource(*input, f)
		gen = reader
		*dataset = "input:" + *input
	} else {
		var ok bool
		gen, ok = datagen.ByName(*dataset, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
	}
	partitioner, err := partition.ByName(*algo)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var mode core.ExpansionMode
	switch *expansion {
	case "auto":
		mode = core.ExpansionAuto
	case "off":
		mode = core.ExpansionOff
	case "forced":
		mode = core.ExpansionForced
	default:
		fmt.Fprintf(os.Stderr, "unknown expansion mode %q\n", *expansion)
		os.Exit(2)
	}

	cfg := core.Config{
		M:           *m,
		Creators:    *creators,
		Assigners:   *assigners,
		WindowSize:  *windowSize,
		Windows:     *windows,
		Delta:       *delta,
		Theta:       *theta,
		Partitioner: partitioner,
		Expansion:   mode,
		Engine:      *engine,
		MaxPending:  *maxPending,
		Source:      gen,

		ProbeParallelism: *probePar,
		ProbeBatch:       *probeBatch,

		MemoryBudget: memoryBudget.Int64(),
		SpillDir:     *spillDir,
	}
	if *spillDir != "" && memoryBudget == 0 {
		fmt.Fprintln(os.Stderr, "-spill-dir without -memory-budget has no effect; set a budget")
		os.Exit(2)
	}
	if err := transport.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	transport.ApplyTo(&cfg)

	if *workerSpec != "" {
		if err := runWorker(*workerSpec, cfg, *metricsAddr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var opts []core.Option
	var ckptStore state.Store
	if *recoverDir != "" {
		if *input != "" {
			fmt.Fprintln(os.Stderr, "-recover requires a generated -dataset: the reader replays the stream after a failure, which an external -input cannot reproduce")
			os.Exit(2)
		}
		if *processes {
			fmt.Fprintln(os.Stderr, "-recover is not supported with -processes (the in-process runner owns the restart loop)")
			os.Exit(2)
		}
		store, err := state.NewFSStore(*recoverDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ckptStore = store
		name, s := *dataset, *seed
		opts = append(opts, core.WithRecovery(core.Recovery{
			Store: store,
			NewSource: func() datagen.Generator {
				g, _ := datagen.ByName(name, s)
				return g
			},
		}))
	}
	if *killWorker != "" {
		if *clusterN <= 0 || *processes {
			fmt.Fprintln(os.Stderr, "-kill-worker needs an in-process cluster run (-cluster N without -processes)")
			os.Exit(2)
		}
		if ckptStore == nil {
			fmt.Fprintln(os.Stderr, "-kill-worker needs -recover: without checkpoints the kill just fails the run")
			os.Exit(2)
		}
		var victim int
		var afterMs int
		if _, err := fmt.Sscanf(*killWorker, "%d:%d", &victim, &afterMs); err != nil {
			fmt.Fprintf(os.Stderr, "bad -kill-worker spec %q, want id:afterMs\n", *killWorker)
			os.Exit(2)
		}
		killCfg := cfg
		var once sync.Once
		opts = append(opts, core.WithWorkerHook(func(i int, w *cluster.Worker) {
			if i != victim {
				return
			}
			// Only the first attempt's worker is killed; the hook fires
			// again for the recovered placement. The delay counts from
			// the first complete checkpoint cut, so the kill always has
			// state to recover (and the demo is robust to machine speed).
			once.Do(func() {
				go func() {
					for core.CheckpointCut(killCfg, ckptStore) < 0 {
						time.Sleep(2 * time.Millisecond)
					}
					time.Sleep(time.Duration(afterMs) * time.Millisecond)
					fmt.Printf("killing worker %d\n", victim)
					w.Kill()
				}()
			})
		}))
	}
	if *heartbeat > 0 || *lease > 0 {
		if *clusterN <= 0 || *processes {
			fmt.Fprintln(os.Stderr, "-heartbeat-interval/-lease-timeout need an in-process cluster run (-cluster N without -processes)")
			os.Exit(2)
		}
		hb, ls := *heartbeat, *lease
		if hb == 0 {
			hb = 250 * time.Millisecond
		}
		if ls == 0 {
			ls = 10 * time.Second
		}
		opts = append(opts, core.WithHeartbeat(hb, ls))
	}
	if *rescaleAt != "" {
		if *clusterN <= 0 || *processes {
			fmt.Fprintln(os.Stderr, "-rescale-at needs an in-process cluster run (-cluster N without -processes)")
			os.Exit(2)
		}
		policy, err := parseRescaleSchedule(*rescaleAt, *clusterN)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts = append(opts, core.WithElastic(), core.WithRescalePolicy(policy))
	}
	if *chaosSeed != 0 {
		if *clusterN <= 0 || *processes {
			fmt.Fprintln(os.Stderr, "-chaos-seed needs an in-process cluster run (-cluster N without -processes)")
			os.Exit(2)
		}
		// Anchor the schedule to the run's stream: total documents is a
		// lower bound on dispatched copies, so every event actually
		// fires before the stream ends.
		sched := cluster.RandomSchedule(*chaosSeed, *chaosEvents, *clusterN, int64(*windows**windowSize))
		opts = append(opts, core.WithChaos(&core.Chaos{Schedule: &sched}))
		fmt.Printf("chaos schedule: seed=%d events=%d (re-run with the same seed to reproduce the fault sequence)\n",
			*chaosSeed, len(sched.Events))
	}
	if *metricsAddr != "" && !*processes {
		// With -processes, each spawned worker serves its own endpoint
		// (the flag is re-issued to them) and prints its resolved port.
		opts = append(opts,
			core.WithTelemetry(telemetry.NewRegistry()),
			core.WithMetricsAddr(*metricsAddr))
		fmt.Printf("scrape metrics during the run: curl http://%s/metrics\n", *metricsAddr)
		if *clusterN > 0 && *rescaleAt == "" {
			// A scrape endpoint on a cluster run also serves POST /rescale
			// and GET /debug/placement; publish the live-rescale handle so
			// they work on demand.
			opts = append(opts, core.WithElastic())
			fmt.Printf("rescale on demand: curl -X POST -d n=5 http://%s/rescale\n", *metricsAddr)
		}
	}

	var report *core.Report
	switch {
	case *clusterN > 0 && *processes:
		if *input != "" {
			fmt.Fprintln(os.Stderr, "-processes requires a named -dataset (external -input cannot be shared across processes)")
			os.Exit(2)
		}
		fmt.Printf("running %s/%s over %d worker processes: m=%d windows=%d x %d docs\n",
			*dataset, *algo, *clusterN, *m, *windows, *windowSize)
		if err := runProcesses(*clusterN); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case *clusterN > 0:
		fmt.Printf("running %s/%s over %d TCP workers: m=%d windows=%d x %d docs\n",
			*dataset, *algo, *clusterN, *m, *windows, *windowSize)
		report, err = core.NewRunner(cfg, append(opts, core.WithWorkers(*clusterN))...).Run()
	default:
		fmt.Printf("running %s/%s in process: m=%d windows=%d x %d docs\n",
			*dataset, *algo, *m, *windows, *windowSize)
		report, err = core.NewRunner(cfg, opts...).Run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *verbose {
		for i, w := range report.Run.Windows {
			fmt.Printf("  window %d: %s\n", i, w)
		}
		for _, comp := range []string{"creator", "merger", "assigner", "joiner"} {
			if lat, ok := report.Topology.Latency[comp]; ok {
				fmt.Printf("  latency %-9s %s\n", comp, lat)
			}
		}
		if snap := report.Telemetry; len(snap.Counters) > 0 {
			fmt.Printf("  telemetry: join_pairs=%d deliveries=%d broadcasts=%d update_requests=%d\n",
				snap.SumCounter("join_pairs_total"),
				snap.SumCounter("partition_deliveries_total"),
				snap.SumCounter("partition_broadcasts_total"),
				snap.SumCounter("partition_update_requests_total"))
		}
	}
	fmt.Printf("summary: %s\n", report)
	fmt.Printf("join pairs: %d  documents joined: %d\n", report.JoinPairs, report.DocsJoined)
	if report.Restarts > 0 {
		fmt.Printf("recovered from %d worker failure(s): restored from the last checkpoint cut and replayed\n", report.Restarts)
	}
	if reader != nil && reader.Err() != nil {
		fmt.Fprintf(os.Stderr, "input stream error: %v\n", reader.Err())
		os.Exit(1)
	}
	if len(report.Topology.Failures) > 0 {
		fmt.Fprintf(os.Stderr, "task failures: %v\n", report.Topology.Failures)
		os.Exit(1)
	}
}

// parseRescaleSchedule turns a "window:+k,window:-k" spec into a
// rescale policy: once window N completes, the cluster grows or
// shrinks by k workers relative to the running total. Each entry fires
// at most once; the policy returns 0 (no change) for every other
// window.
func parseRescaleSchedule(spec string, start int) (func(int, bool) int, error) {
	deltas := make(map[int]int)
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.SplitN(entry, ":", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad -rescale-at entry %q, want window:+k or window:-k", entry)
		}
		w, err := strconv.Atoi(parts[0])
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -rescale-at window in %q", entry)
		}
		if parts[1] == "" || (parts[1][0] != '+' && parts[1][0] != '-') {
			return nil, fmt.Errorf("bad -rescale-at delta in %q, want an explicit +k or -k", entry)
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k == 0 {
			return nil, fmt.Errorf("bad -rescale-at delta in %q", entry)
		}
		if _, dup := deltas[w]; dup {
			return nil, fmt.Errorf("duplicate -rescale-at window %d", w)
		}
		deltas[w] = k
	}
	// Validate the cumulative worker count stays positive in window order.
	ws := make([]int, 0, len(deltas))
	for w := range deltas {
		ws = append(ws, w)
	}
	sort.Ints(ws)
	cur := start
	for _, w := range ws {
		cur += deltas[w]
		if cur < 1 {
			return nil, fmt.Errorf("-rescale-at schedule drops the cluster to %d workers at window %d", cur, w)
		}
	}
	cur = start
	var mu sync.Mutex
	return func(window int, _ bool) int {
		mu.Lock()
		defer mu.Unlock()
		k, ok := deltas[window]
		if !ok {
			return 0
		}
		delete(deltas, window)
		cur += k
		fmt.Printf("window %d complete: rescaling to %d workers\n", window, cur)
		return cur
	}, nil
}

// runProcesses hosts the coordinator and spawns this binary once per
// worker; every inter-component tuple crosses a real process boundary.
// The worker hosting the collector task prints the run report.
func runProcesses(n int) error {
	coord, err := cluster.NewCoordinator(n)
	if err != nil {
		return err
	}
	self, err := os.Executable()
	if err != nil {
		return err
	}
	// Re-issue our own flags to the workers, adding the worker spec.
	var workers []*exec.Cmd
	for i := 0; i < n; i++ {
		args := append([]string(nil), os.Args[1:]...)
		args = append(args, "-worker", fmt.Sprintf("%d:%d:%s", i, n, coord.Addr()))
		cmd := exec.Command(self, args...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn worker %d: %w", i, err)
		}
		workers = append(workers, cmd)
	}
	stats, err := coord.Run()
	for _, w := range workers {
		if werr := w.Wait(); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("cluster stats: emitted=%v executed=%v\n", stats.Emitted, stats.Executed)
	if len(stats.Failures) > 0 {
		return fmt.Errorf("task failures: %v", stats.Failures)
	}
	return nil
}

// runWorker executes one cluster worker inside this process (spawned by
// runProcesses). Every worker builds the identical topology from the
// shared flags; the placement decides which tasks run here. A non-empty
// metricsAddr exposes the worker's own scrape endpoint for the duration
// of the run (pass :0 so concurrent workers don't collide on a port).
func runWorker(spec string, cfg core.Config, metricsAddr string) error {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return fmt.Errorf("bad -worker spec %q", spec)
	}
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad -worker id: %w", err)
	}
	count, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("bad -worker count: %w", err)
	}
	coordAddr := parts[2]

	core.RegisterGobTypes()
	if metricsAddr != "" {
		cfg.Telemetry = telemetry.NewRegistry()
	}
	builder, report, err := core.NewTopology(cfg)
	if err != nil {
		return err
	}
	spec2, err := builder.Spec()
	if err != nil {
		return err
	}
	placement, err := cluster.NewPlacement(spec2, count)
	if err != nil {
		return err
	}
	w, err := cluster.NewWorker(id, count, builder, coordAddr)
	if err != nil {
		return err
	}
	// The wire configuration must be uniform across the cluster; the
	// spawner re-issues its own flags to every worker, so each process
	// resolves the same values here.
	w.WireFormat = cfg.WireFormat
	w.FrameBatch = cfg.FrameBatch
	w.FrameFlushInterval = cfg.FrameFlushInterval
	w.FrameCompress = cfg.FrameCompress
	if metricsAddr != "" {
		w.Telemetry = cfg.Telemetry
		w.MetricsAddr = metricsAddr
		// The endpoint binds inside Run; report the resolved port (the
		// spec recommends :0) as soon as it is up.
		go func() {
			for i := 0; i < 200; i++ {
				if a := w.ScrapeAddr(); a != "" {
					fmt.Printf("worker %d metrics at http://%s/metrics\n", id, a)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}
	if err := w.Run(); err != nil {
		return err
	}
	// The worker hosting the collector owns the aggregated report.
	if len(placement.TasksOn("collector", id)) > 0 {
		fmt.Printf("summary (worker %d): %s\n", id, report)
		fmt.Printf("join pairs: %d  documents joined: %d\n", report.JoinPairs, report.DocsJoined)
	}
	return nil
}
